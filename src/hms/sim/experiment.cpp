#include "hms/sim/experiment.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <semaphore>
#include <string_view>

#include "hms/common/backoff.hpp"
#include "hms/common/cancel.hpp"
#include "hms/common/env.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/sim/checkpoint.hpp"
#include "hms/sim/parallel.hpp"
#include "hms/sim/sharded_sweep.hpp"
#include "hms/workloads/registry.hpp"

namespace hms::sim {

ReplayMode default_replay_mode() {
  const char* env = std::getenv("HMS_REPLAY_MODE");
  const std::string_view mode = env != nullptr ? env : "";
  if (mode.empty() || mode == "chunk") return ReplayMode::ChunkMajor;
  if (mode == "config") return ReplayMode::ConfigMajor;
  if (mode == "shard") return ReplayMode::Sharded;
  throw ConfigError(with_context(
      "HMS_REPLAY_MODE", "expected \"chunk\", \"config\" or \"shard\", got \"" +
                             std::string(mode) + "\""));
}

std::uint64_t default_cell_timeout_ms() {
  return env_u64("HMS_CELL_TIMEOUT_MS", 0);
}

std::uint64_t default_retry_backoff_ms() {
  return env_u64("HMS_RETRY_BACKOFF_MS", 25);
}

unsigned default_warmup_threads() {
  const char* env = std::getenv("HMS_WARMUP_THREADS");
  if (env == nullptr || *env == '\0') return 0;  // follow threads
  const std::uint64_t v = env_u64("HMS_WARMUP_THREADS", 0);
  if (v == 0) {
    throw ConfigError(with_context(
        "HMS_WARMUP_THREADS",
        "must be >= 1, got \"0\" (unset the variable to follow the sweep "
        "thread count)"));
  }
  if (v > std::numeric_limits<unsigned>::max()) {
    throw ConfigError(with_context(
        "HMS_WARMUP_THREADS", "out of range: \"" + std::string(env) + "\""));
  }
  return static_cast<unsigned>(v);
}

workloads::WorkloadParams ExperimentConfig::params_for(
    const workloads::WorkloadInfo& info) const {
  workloads::WorkloadParams p;
  p.footprint_bytes =
      std::max<std::uint64_t>(info.paper_footprint_bytes / footprint_divisor,
                              1ull << 20);
  p.seed = seed;
  p.iterations = iterations;
  return p;
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)),
      factory_(config_.scale_divisor, mem::TechnologyRegistry::table1(),
               config_.design_options),
      suite_(config_.suite.empty() ? workloads::paper_suite()
                                   : config_.suite),
      trace_store_(config_.trace_cache_dir.empty()
                       ? nullptr
                       : std::make_unique<trace::TraceStore>(
                             config_.trace_cache_dir)) {}

FrontCapture ExperimentRunner::capture_workload(const std::string& workload) {
  // Instantiate once to read the paper metadata needed for sizing.
  auto probe = workloads::make_workload(
      workload, workloads::WorkloadParams{1ull << 20, config_.seed, 1});
  const auto params = config_.params_for(probe->info());
  probe.reset();
  return capture_front_cached(workload, params, factory_, trace_store_.get());
}

const FrontCapture& ExperimentRunner::front(const std::string& workload) {
  auto it = fronts_.find(workload);
  if (it != fronts_.end()) return it->second;
  return fronts_.emplace(workload, capture_workload(workload)).first->second;
}

const model::DesignReport& ExperimentRunner::base_report(
    const std::string& workload) {
  auto it = base_reports_.find(workload);
  if (it != base_reports_.end()) return it->second;
  const FrontCapture& capture = front(workload);
  auto back = factory_.base_back(capture.footprint_bytes);
  // The base replay follows the same sample plan as every design cell:
  // estimating numerator and denominator from the same intervals makes the
  // clustering error partially cancel in the normalized ratios.
  const auto profile = replay_back(capture, *back, plan_for(workload));
  const auto anchor =
      model::make_anchor(profile, capture.info.memory_bound_fraction);
  anchors_.emplace(workload, anchor);
  auto report = model::evaluate("base", workload, profile, anchor);
  return base_reports_.emplace(workload, std::move(report)).first->second;
}

const SamplePlan* ExperimentRunner::plan_for(const std::string& workload) {
  if (config_.sampling != SamplingMode::SimPoint) return nullptr;
  auto it = plans_.find(workload);
  if (it == plans_.end()) {
    // Built during the serial warm-up (base_report reaches here before any
    // grid task runs); afterwards the map is read-only, so concurrent grid
    // tasks only ever hit the find above.
    const FrontCapture& capture = front(workload);
    it = plans_
             .emplace(workload,
                      build_sample_plan(capture.residual,
                                        capture.interval_profile,
                                        config_.sample_k,
                                        config_.warmup_chunks, config_.seed))
             .first;
  }
  return &it->second;
}

const model::ReferenceAnchor& ExperimentRunner::anchor(
    const std::string& workload) {
  (void)base_report(workload);  // ensures the anchor is computed
  return anchors_.at(workload);
}

WarmedWorkload ExperimentRunner::warm_workload(const std::string& workload) {
  // Mirrors the lazy front()/plan_for()/base_report() chain — same
  // operations, same fault sites in the same order (one
  // "sim/capture_front", one "sim/replay_back") — but entirely off the
  // shared maps, so warm-ups for different workloads can run concurrently.
  WarmedWorkload warmed;
  warmed.capture = capture_workload(workload);
  if (config_.sampling == SamplingMode::SimPoint) {
    warmed.plan.emplace(build_sample_plan(
        warmed.capture.residual, warmed.capture.interval_profile,
        config_.sample_k, config_.warmup_chunks, config_.seed));
  }
  auto back = factory_.base_back(warmed.capture.footprint_bytes);
  const auto profile = replay_back(warmed.capture, *back,
                                   warmed.plan ? &*warmed.plan : nullptr);
  warmed.anchor =
      model::make_anchor(profile, warmed.capture.info.memory_bound_fraction);
  warmed.base = model::evaluate("base", workload, profile, warmed.anchor);
  return warmed;
}

WorkloadResult ExperimentRunner::evaluate_back(const std::string& design_name,
                                               const std::string& workload,
                                               cache::MemoryHierarchy& back) {
  (void)base_report(workload);  // warm the base/anchor before replaying
  const FrontCapture& capture = front(workload);
  cache::HierarchyProfile profile;
  std::vector<RepEstimate> reps;
  try {
    profile = replay_back(capture, back, plan_for(workload), &reps);
  } catch (const CancelledError& e) {
    // Preserve the kind — rethrow_with_context would flatten it into
    // SimulationError and the watchdog/interrupt distinction would vanish.
    throw CancelledError(with_context("replay_back", e.what()), e.kind());
  } catch (...) {
    rethrow_with_context("replay_back");
  }
  return finish_result(design_name, workload, profile, reps);
}

WorkloadResult ExperimentRunner::finish_result(
    const std::string& design_name, const std::string& workload,
    const cache::HierarchyProfile& profile,
    const std::vector<RepEstimate>& reps) {
  // base_report must run before the anchors_ lookup (it computes both).
  const model::DesignReport& base = base_report(workload);
  return finish_result(design_name, workload, profile, reps, base,
                       anchors_.at(workload));
}

WorkloadResult ExperimentRunner::finish_result(
    const std::string& design_name, const std::string& workload,
    const cache::HierarchyProfile& profile,
    const std::vector<RepEstimate>& reps, const model::DesignReport& base,
    const model::ReferenceAnchor& anchor) const {
  WorkloadResult result;
  result.report = model::evaluate(design_name, workload, profile, anchor);
  result.normalized = model::normalize(result.report, base);
  if (!reps.empty()) {
    // Error bars: evaluate the model per representative extrapolation and
    // take the share-weighted stddev of each normalized metric — "how much
    // would the answer move if the whole trace behaved like one cluster".
    result.sampled = true;
    std::vector<std::array<double, 5>> vals;
    vals.reserve(reps.size());
    double share_sum = 0;
    for (const auto& rep : reps) {
      const auto rep_report =
          model::evaluate(design_name, workload, rep.profile, anchor);
      const auto n = model::normalize(rep_report, base);
      vals.push_back({n.runtime, n.dynamic, n.leakage, n.total_energy, n.edp});
      share_sum += rep.share;
    }
    std::array<double, 5> mean{};
    for (std::size_t r = 0; r < reps.size(); ++r) {
      for (std::size_t m = 0; m < 5; ++m) mean[m] += reps[r].share * vals[r][m];
    }
    std::array<double, 5> var{};
    for (std::size_t r = 0; r < reps.size(); ++r) {
      for (std::size_t m = 0; m < 5; ++m) {
        const double d = vals[r][m] - mean[m] / share_sum;
        var[m] += reps[r].share * d * d;
      }
    }
    for (auto& v : var) v /= share_sum;
    result.spread.runtime = std::sqrt(var[0]);
    result.spread.dynamic = std::sqrt(var[1]);
    result.spread.leakage = std::sqrt(var[2]);
    result.spread.total_energy = std::sqrt(var[3]);
    result.spread.edp = std::sqrt(var[4]);
  }
  return result;
}

SuiteResult ExperimentRunner::average(
    std::string config_name, std::vector<WorkloadResult> results) const {
  check(!results.empty(), "SuiteResult: no workload results");
  SuiteResult suite;
  suite.config_name = std::move(config_name);
  double runtime = 0, dynamic = 0, leakage = 0, total = 0, edp = 0;
  for (const auto& r : results) {
    runtime += r.normalized.runtime;
    dynamic += r.normalized.dynamic;
    leakage += r.normalized.leakage;
    total += r.normalized.total_energy;
    edp += r.normalized.edp;
  }
  const double n = static_cast<double>(results.size());
  suite.runtime = runtime / n;
  suite.dynamic = dynamic / n;
  suite.leakage = leakage / n;
  suite.total_energy = total / n;
  suite.edp = edp / n;
  // Suite error bars: per-workload sampling spreads combined as
  // independent errors of the mean — sqrt(sum of variances) / n.
  double v_rt = 0, v_dy = 0, v_lk = 0, v_te = 0, v_ed = 0;
  for (const auto& r : results) {
    if (!r.sampled) continue;
    suite.sampled = true;
    v_rt += r.spread.runtime * r.spread.runtime;
    v_dy += r.spread.dynamic * r.spread.dynamic;
    v_lk += r.spread.leakage * r.spread.leakage;
    v_te += r.spread.total_energy * r.spread.total_energy;
    v_ed += r.spread.edp * r.spread.edp;
  }
  if (suite.sampled) {
    suite.spread.runtime = std::sqrt(v_rt) / n;
    suite.spread.dynamic = std::sqrt(v_dy) / n;
    suite.spread.leakage = std::sqrt(v_lk) / n;
    suite.spread.total_energy = std::sqrt(v_te) / n;
    suite.spread.edp = std::sqrt(v_ed) / n;
  }
  suite.per_workload = std::move(results);
  return suite;
}

template <typename Config, typename MakeBack>
std::vector<SuiteResult> ExperimentRunner::sweep(
    const std::string& label, const std::vector<Config>& configs,
    const MakeBack& make_back) {
  last_checkpoint_skips_ = 0;
  std::unique_ptr<SweepCheckpoint> checkpoint;
  if (!config_.checkpoint_path.empty()) {
    checkpoint = std::make_unique<SweepCheckpoint>(
        config_.checkpoint_path, experiment_hash(config_, label));
  }

  // Configs already present in the checkpoint are restored, not re-run.
  std::vector<std::optional<SuiteResult>> finished(configs.size());
  std::vector<std::size_t> pending;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (checkpoint != nullptr) {
      if (const SuiteResult* done = checkpoint->find(configs[c].name)) {
        finished[c] = *done;
        ++last_checkpoint_skips_;
        continue;
      }
    }
    pending.push_back(c);
  }

  if (!pending.empty()) {
    // -- Pipelined warm-up --------------------------------------------------
    // One slot per suite workload. Pre-warmed workloads (their base report
    // is already cached) alias the shared maps; the rest are warmed off the
    // maps — concurrently, each slot written by exactly one task — and
    // settled into the maps only after the engines drain.
    struct WarmSlot {
      bool needs_warm = false;
      std::size_t rank = 0;  ///< 0-based among slots needing warm-up
      std::optional<WarmedWorkload> owned;
      const FrontCapture* capture = nullptr;
      const model::DesignReport* base = nullptr;
      const model::ReferenceAnchor* anchor = nullptr;
      const SamplePlan* plan = nullptr;
      std::string error;
      [[nodiscard]] bool ok() const {
        return error.empty() && capture != nullptr;
      }
    };
    std::vector<WarmSlot> slots(suite_.size());
    std::size_t warm_count = 0;
    for (std::size_t w = 0; w < suite_.size(); ++w) {
      WarmSlot& slot = slots[w];
      const auto it = base_reports_.find(suite_[w]);
      if (it != base_reports_.end()) {
        slot.capture = &fronts_.at(suite_[w]);
        slot.base = &it->second;
        slot.anchor = &anchors_.at(suite_[w]);
        slot.plan = plan_for(suite_[w]);
      } else {
        slot.needs_warm = true;
        slot.rank = warm_count++;
      }
    }

    // Canonical fault-slot bases, snapshotted before any warm-up hit: the
    // warm-up for rank r takes "sim/capture_front" / "sim/replay_back" at
    // slot base + r + 1, and grid cell (p, w) replays at rb_grid_base +
    // w * pending.size() + p + 1 — so a given arming fails the same cells
    // at any warm-up/grid interleaving (DESIGN.md §5f).
    std::uint64_t cf_base = 0;
    std::uint64_t rb_base = 0;
    if (FaultInjector* injector = FaultInjector::active()) {
      cf_base = injector->hits("sim/capture_front");
      rb_base = injector->hits("sim/replay_back");
    }
    const std::uint64_t rb_grid_base = rb_base + warm_count;

    const unsigned warm_workers = resolve_workers(
        config_.warmup_threads != 0 ? config_.warmup_threads
                                    : config_.threads);
    // Caps how many warm-ups run concurrently when the grid engines drive
    // them (chunk-major tasks and sharded warm hooks both funnel through
    // warm_into below).
    std::counting_semaphore<> warm_gate(warm_workers);

    // Warms one workload into its slot. Never throws: any failure —
    // including an interrupt-kind CancelledError, which the post-drain
    // interrupt check turns into the sweep abort — is recorded as the
    // slot's error, with the same context the serial warm-up produced.
    const auto warm_into = [&](std::size_t w) {
      WarmSlot& slot = slots[w];
      warm_gate.acquire();
      struct Release {
        std::counting_semaphore<>& gate;
        ~Release() { gate.release(); }
      } release{warm_gate};
      try {
        ShardFaultAccount account;
        {
          ScopedFaultIndex redirect(account);
          redirect.route("sim/capture_front", {cf_base + slot.rank + 1});
          redirect.route("sim/replay_back", {rb_base + slot.rank + 1});
          slot.owned.emplace(warm_workload(suite_[w]));
        }
        account.seal();
        slot.capture = &slot.owned->capture;
        slot.base = &slot.owned->base;
        slot.anchor = &slot.owned->anchor;
        slot.plan = slot.owned->plan ? &*slot.owned->plan : nullptr;
      } catch (const std::exception& e) {
        slot.error =
            with_context("warm-up / workload " + suite_[w], e.what());
      }
    };

    // Moves every warmed slot's products into the shared maps and re-points
    // the slot at the map entries. Single-threaded: called only after the
    // warm pool / grid engines have drained.
    const auto settle_warm_slots = [&] {
      for (std::size_t w = 0; w < suite_.size(); ++w) {
        WarmSlot& slot = slots[w];
        if (!slot.owned) continue;
        const std::string& workload = suite_[w];
        slot.capture =
            &fronts_.emplace(workload, std::move(slot.owned->capture))
                 .first->second;
        slot.base =
            &base_reports_.emplace(workload, std::move(slot.owned->base))
                 .first->second;
        slot.anchor =
            &anchors_.emplace(workload, slot.owned->anchor).first->second;
        if (slot.owned->plan) {
          slot.plan = &plans_.emplace(workload, std::move(*slot.owned->plan))
                           .first->second;
        }
        slot.owned.reset();
      }
    };

    const bool config_major = config_.replay_mode == ReplayMode::ConfigMajor;

    // Config-major cell tasks span workloads, so its warm-up runs as its
    // own barriered pool first; the chunk/shard pipelines below overlap
    // warm-up with grid replay instead.
    std::vector<std::size_t> live;
    std::vector<SuiteFailure> warm_failures;
    if (config_major) {
      if (warm_count != 0) {
        std::vector<ParallelTask> warm_tasks;
        warm_tasks.reserve(warm_count);
        for (std::size_t w = 0; w < suite_.size(); ++w) {
          if (!slots[w].needs_warm) continue;
          ParallelTask task;
          task.label = "warm-up / workload " + suite_[w];
          task.fn = [&, w] {
            // The warm-up gets the same per-cell watchdog as the grid: one
            // budget per workload. Timeouts degrade just that workload;
            // interrupts surface through the check below.
            CancellationToken token(config_.cell_timeout_ms);
            const CancelScope scope(token);
            warm_into(w);
          };
          warm_tasks.push_back(std::move(task));
        }
        ParallelOptions warm_options;
        warm_options.threads = warm_workers;
        warm_options.policy = ErrorPolicy::degrade;
        warm_options.stop_on_interrupt = true;
        (void)run_parallel(std::move(warm_tasks), warm_options);
        settle_warm_slots();
        if (const int sig = interrupt_signal(); sig != 0) {
          throw CancelledError("sweep " + label + ": interrupted by signal " +
                                   std::to_string(sig),
                               CancelKind::interrupt);
        }
      }
      for (std::size_t w = 0; w < suite_.size(); ++w) {
        if (slots[w].ok()) {
          live.push_back(w);
        } else if (!slots[w].error.empty()) {
          warm_failures.push_back({suite_[w], slots[w].error});
        }
      }
      if (live.empty()) {
        throw SimulationError(
            with_context("sweep " + label,
                         "every workload failed warm-up; first: " +
                             warm_failures.front().error));
      }
    }

    // Grid width: config-major runs cells for surviving workloads only;
    // the pipelined modes give every suite workload a column and surface
    // warm-up failures through the per-cell bookkeeping.
    const std::size_t width = config_major ? live.size() : suite_.size();
    std::vector<std::vector<std::optional<WorkloadResult>>> grid(
        pending.size(), std::vector<std::optional<WorkloadResult>>(width));
    std::vector<std::vector<SuiteFailure>> failures(pending.size(),
                                                    warm_failures);
    std::vector<std::size_t> remaining(pending.size(), width);

    // Assembles config p the moment its last cell settles so the checkpoint
    // is durable mid-sweep, not only at the end. Called from on_complete,
    // which the pool serializes.
    const auto settle_config = [&](std::size_t p) {
      std::vector<WorkloadResult> survivors;
      for (auto& cell : grid[p]) {
        if (cell) survivors.push_back(std::move(*cell));
      }
      if (survivors.empty()) return;  // total loss; reported after join
      const std::size_t c = pending[p];
      SuiteResult suite = average(configs[c].name, std::move(survivors));
      // Failures are pushed in completion order, which depends on thread
      // interleaving; sort by suite position (each workload contributes at
      // most one failure per config) so results are bit-identical at any
      // thread count and across replay modes.
      std::stable_sort(failures[p].begin(), failures[p].end(),
                       [&](const SuiteFailure& a, const SuiteFailure& b) {
                         const auto pos = [&](const std::string& name) {
                           return std::find(suite_.begin(), suite_.end(),
                                            name) -
                                  suite_.begin();
                         };
                         return pos(a.workload) < pos(b.workload);
                       });
      suite.failures = std::move(failures[p]);
      suite.partial = !suite.failures.empty();
      // Partial results are deliberately not checkpointed: a resume should
      // re-attempt the failed cells rather than fossilize them.
      if (checkpoint != nullptr && !suite.partial) checkpoint->append(suite);
      finished[c] = std::move(suite);
    };

    if (config_.replay_mode == ReplayMode::Sharded) {
      // The sharded engine owns its worker pool, claiming (workload,
      // config-shard) units with work-stealing; this layer only maps cell
      // outcomes back into the grid/failure bookkeeping, serialized by the
      // engine's on_cell callback. Columns still needing warm-up hand the
      // engine a null capture and the warm hook below: the first worker to
      // claim one of their units warms them in place, pipelined with the
      // replay of already-warm columns.
      std::vector<const FrontCapture*> captures;
      captures.reserve(width);
      std::vector<const SamplePlan*> plans;
      plans.reserve(width);
      for (std::size_t w = 0; w < width; ++w) {
        captures.push_back(slots[w].needs_warm ? nullptr : slots[w].capture);
        plans.push_back(slots[w].needs_warm ? nullptr : slots[w].plan);
      }
      ShardedSweepSpec spec;
      spec.captures = captures;
      spec.plans = plans;
      spec.configs = pending.size();
      spec.threads = config_.threads;
      spec.max_retries = config_.max_retries;
      spec.cell_timeout_ms = config_.cell_timeout_ms;
      spec.retry_backoff_ms = config_.retry_backoff_ms;
      spec.backoff_seed = config_.seed;
      spec.replay_fault_base = rb_grid_base;
      spec.warm = [&](std::size_t w) {
        warm_into(w);
        WarmSlot& slot = slots[w];
        ShardedWarmResult result;
        if (slot.ok()) {
          result.capture = slot.capture;
          result.plan = slot.plan;
        } else {
          result.error = slot.error.empty() ? "warm-up failed" : slot.error;
        }
        return result;
      };
      spec.make_back = [&](std::size_t p, std::size_t w) {
        // The engine only builds backs for Ready columns, so the slot's
        // capture pointer is settled and stable here.
        return make_back(configs[pending[p]], slots[w].capture->footprint_bytes);
      };
      spec.on_cell = [&](std::size_t p, std::size_t w,
                         ShardedCellOutcome&& out) {
        const std::size_t c = pending[p];
        const std::string& workload = suite_[w];
        if (out.warm_failure) {
          // The warm hook already contextualized the error; recording it
          // once per config mirrors the serial warm-up's exclusion.
          failures[p].push_back({workload, out.error});
          if (--remaining[p] == 0) settle_config(p);
          return;
        }
        const std::string cell =
            "config " + configs[c].name + " / workload " + workload;
        if (out.ok) {
          try {
            grid[p][w] =
                finish_result(configs[c].name, workload, out.profile, out.reps,
                              *slots[w].base, *slots[w].anchor);
          } catch (const std::exception& e) {
            failures[p].push_back({workload, with_context(cell, e.what())});
          }
        } else if (out.constructed) {
          failures[p].push_back(
              {workload,
               with_context(cell, with_context("replay_back", out.error))});
        } else {
          failures[p].push_back({workload, with_context(cell, out.error)});
        }
        if (--remaining[p] == 0) settle_config(p);
      };
      run_sharded_sweep(spec);
      // (Falls through to the shared settle/assembly below.)
    } else {
      std::vector<ParallelTask> tasks;
      ParallelOptions options;
      options.threads = config_.threads;
      options.policy = ErrorPolicy::degrade;
      options.stop_on_interrupt = true;
      options.retry_backoff_ms = config_.retry_backoff_ms;
      options.backoff_seed = config_.seed;

      // Chunk-major: per-cell errors filled in by the workload tasks
      // (empty string = cell succeeded), harvested in on_complete.
      std::vector<std::vector<std::string>> cell_errors;

      if (config_.replay_mode == ReplayMode::ChunkMajor) {
        // One fused task per workload: the task warms its own workload if
        // needed (pipelined with other workloads' replays, throttled by
        // warm_gate), then feeds every pending config's back from a single
        // decode pass over the residual chunks (replay_back_many). A cell
        // that fails falls back to bounded standalone-replay retries,
        // mirroring the config-major transient-retry semantics.
        cell_errors.assign(pending.size(), std::vector<std::string>(width));
        tasks.reserve(width);
        for (std::size_t w = 0; w < width; ++w) {
          ParallelTask task;
          task.label = "workload " + suite_[w];
          task.fn = [this, &configs, &make_back, &grid, &cell_errors,
                     &pending, &slots, &warm_into, rb_grid_base, w] {
            WarmSlot& slot = slots[w];
            const std::string& workload = suite_[w];

            // Per-task watchdog: one budget for the warm-up, then a fresh
            // one for the replay; replay_back_many polls this as the
            // thread's ambient token and re-arms it itself whenever a
            // timed-out cell is dropped.
            CancellationToken token(config_.cell_timeout_ms);
            const CancelScope token_scope(token);

            if (slot.needs_warm) {
              warm_into(w);
              token.rearm();
            }
            // A failed warm-up excludes exactly this workload: on_complete
            // records slot.error against every pending config.
            if (!slot.ok()) return;
            const FrontCapture& capture = *slot.capture;
            const SamplePlan* const plan = slot.plan;

            // Build one back per pending config; a config whose construction
            // fails is excluded from the replay (its cell error is final —
            // retrying a deterministic ConfigError cannot help).
            std::vector<std::unique_ptr<cache::MemoryHierarchy>> owned(
                pending.size());
            std::vector<cache::MemoryHierarchy*> backs;
            std::vector<std::size_t> built;  // index into pending, per back
            backs.reserve(pending.size());
            built.reserve(pending.size());
            for (std::size_t p = 0; p < pending.size(); ++p) {
              const std::size_t c = pending[p];
              const std::string cell =
                  "config " + configs[c].name + " / workload " + workload;
              try {
                owned[p] = make_back(configs[c], capture.footprint_bytes);
                backs.push_back(owned[p].get());
                built.push_back(p);
              } catch (const std::exception& e) {
                cell_errors[p][w] = with_context(cell, e.what());
              }
            }

            // Canonical per-cell fault slots: built back b (for pending
            // index p) replays at rb_grid_base + w * pending.size() + p +
            // 1, routed through the thread-local redirect so the hits
            // replay_back_many takes keep their serial identity at any
            // interleaving. The account seals at scope exit, before the
            // retries below take plain global hits.
            std::vector<BackReplayOutcome> outcomes;
            {
              ShardFaultAccount account;
              ScopedFaultIndex redirect(account);
              std::vector<std::uint64_t> rb_slots;
              rb_slots.reserve(built.size());
              for (const std::size_t p : built) {
                rb_slots.push_back(rb_grid_base +
                                   static_cast<std::uint64_t>(w) *
                                       pending.size() +
                                   p + 1);
              }
              redirect.route("sim/replay_back", std::move(rb_slots));
              outcomes = replay_back_many(capture, backs, plan);
            }
            for (std::size_t b = 0; b < outcomes.size(); ++b) {
              const std::size_t p = built[b];
              const std::size_t c = pending[p];
              const std::string cell =
                  "config " + configs[c].name + " / workload " + workload;
              if (outcomes[b].ok) {
                grid[p][w] = finish_result(configs[c].name, workload,
                                           outcomes[b].profile,
                                           outcomes[b].reps, *slot.base,
                                           *slot.anchor);
                continue;
              }
              cell_errors[p][w] =
                  with_context(cell, with_context("replay_back",
                                                  outcomes[b].error));
              // Bounded per-cell retries with a fresh back and a standalone
              // replay (same ordered stream, so the result stays identical),
              // spaced by deterministic exponential backoff and each given
              // a fresh watchdog budget. Retries take plain global fault
              // hits — the canonical account above has already sealed.
              const std::uint64_t cell_seed =
                  config_.seed ^
                  ((static_cast<std::uint64_t>(p) << 32) ^ w);
              bool stop_retrying = false;
              for (std::uint32_t attempt = 0;
                   attempt < config_.max_retries && !stop_retrying;
                   ++attempt) {
                if (config_.retry_backoff_ms != 0) {
                  const std::uint64_t delay = backoff_delay_ms(
                      attempt, cell_seed, config_.retry_backoff_ms);
                  if (!backoff_sleep(delay)) break;  // interrupted mid-wait
                }
                token.rearm();
                try {
                  auto back = make_back(configs[c], capture.footprint_bytes);
                  cache::HierarchyProfile profile;
                  std::vector<RepEstimate> reps;
                  try {
                    profile = replay_back(capture, *back, plan, &reps);
                  } catch (const CancelledError& e) {
                    throw CancelledError(
                        with_context("replay_back", e.what()), e.kind());
                  } catch (...) {
                    rethrow_with_context("replay_back");
                  }
                  grid[p][w] = finish_result(configs[c].name, workload,
                                             profile, reps, *slot.base,
                                             *slot.anchor);
                  cell_errors[p][w].clear();
                  break;
                } catch (const CancelledError& e) {
                  cell_errors[p][w] = with_context(cell, e.what());
                  if (e.kind() == CancelKind::interrupt) stop_retrying = true;
                } catch (const std::exception& e) {
                  cell_errors[p][w] = with_context(cell, e.what());
                }
              }
              token.rearm();  // fresh budget for the next cell's retries
            }
          };
          tasks.push_back(std::move(task));
        }
        // Retries are per cell inside the task; a retry at task granularity
        // would re-run every config's replay.
        options.max_retries = 0;
        options.on_complete = [&](std::size_t w, const TaskReport& report) {
          for (std::size_t p = 0; p < pending.size(); ++p) {
            if (report.outcome == TaskOutcome::failed) {
              // The whole workload column died (e.g. out of memory building
              // the backs vector): every pending config loses this cell.
              failures[p].push_back({suite_[w], report.error});
            } else if (!slots[w].error.empty()) {
              failures[p].push_back({suite_[w], slots[w].error});
            } else if (!cell_errors[p][w].empty()) {
              failures[p].push_back({suite_[w], cell_errors[p][w]});
            }
            if (--remaining[p] == 0) settle_config(p);
          }
        };
      } else {
        tasks.reserve(pending.size() * width);
        for (std::size_t p = 0; p < pending.size(); ++p) {
          for (std::size_t l = 0; l < width; ++l) {
            const std::size_t c = pending[p];
            ParallelTask task;
            task.label =
                "config " + configs[c].name + " / workload " + suite_[live[l]];
            task.transient = config_.max_retries > 0;
            task.fn = [this, &configs, &make_back, &grid, &slots, &live, c, p,
                       l] {
              const std::size_t w = live[l];
              // The warm-up barrier above settled this slot; its pointers
              // are stable, so the task never touches the shared maps.
              const WarmSlot& slot = slots[w];
              const std::string& workload = suite_[w];
              // One watchdog budget per attempt: the task body IS one
              // attempt (run_one re-invokes it on retry), so arming here
              // re-arms naturally.
              CancellationToken token(config_.cell_timeout_ms);
              const CancelScope token_scope(token);
              const std::string cell =
                  "config " + configs[c].name + " / workload " + workload;
              try {
                auto back =
                    make_back(configs[c], slot.capture->footprint_bytes);
                cache::HierarchyProfile profile;
                std::vector<RepEstimate> reps;
                try {
                  profile = replay_back(*slot.capture, *back, slot.plan, &reps);
                } catch (const CancelledError& e) {
                  throw CancelledError(with_context("replay_back", e.what()),
                                       e.kind());
                } catch (...) {
                  rethrow_with_context("replay_back");
                }
                grid[p][l] = finish_result(configs[c].name, workload, profile,
                                           reps, *slot.base, *slot.anchor);
              } catch (const CancelledError& e) {
                throw CancelledError(with_context(cell, e.what()), e.kind());
              } catch (...) {
                rethrow_with_context(cell);
              }
            };
            tasks.push_back(std::move(task));
          }
        }
        options.max_retries = config_.max_retries;
        options.on_complete = [&](std::size_t index, const TaskReport& report) {
          const std::size_t p = index / width;
          const std::size_t l = index % width;
          if (report.outcome == TaskOutcome::failed) {
            failures[p].push_back({suite_[live[l]], report.error});
          }
          if (--remaining[p] == 0) settle_config(p);
        };
      }
      (void)run_parallel(std::move(tasks), options);
    }

    // The pipelined modes settle freshly-warmed slots into the shared maps
    // only now, after the engines drained — the single-writer settle is
    // what lets the grid run against stable slot pointers without locks.
    if (!config_major) settle_warm_slots();

    // A process interrupt aborts the sweep here — after the engines have
    // drained (completed configs are already fsync'd into the checkpoint)
    // but before assembly, which would misreport unworked cells as config
    // failures. Callers map the kind to kExitInterrupted.
    if (const int sig = interrupt_signal(); sig != 0) {
      throw CancelledError("sweep " + label + ": interrupted by signal " +
                               std::to_string(sig),
                           CancelKind::interrupt);
    }

    // The pipelined modes discover warm-up failures cell-by-cell; mirror
    // the serial all-failed abort (config-major threw it before its grid).
    if (!config_major && warm_count != 0 &&
        std::none_of(slots.begin(), slots.end(),
                     [](const WarmSlot& s) { return s.ok(); })) {
      std::string first;
      for (const WarmSlot& slot : slots) {
        if (!slot.error.empty()) {
          first = slot.error;
          break;
        }
      }
      throw SimulationError(with_context(
          "sweep " + label, "every workload failed warm-up; first: " + first));
    }
  }

  std::vector<SuiteResult> out;
  out.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (!finished[c]) {
      // Degrading below one surviving workload would leave nothing to plot.
      throw SimulationError("sweep " + label + ": config " + configs[c].name +
                            " failed for every workload");
    }
    out.push_back(std::move(*finished[c]));
  }
  return out;
}

std::vector<SuiteResult> ExperimentRunner::nmm_sweep(
    mem::Technology nvm, const std::vector<designs::NConfig>& configs) {
  return sweep("nmm:" + std::string(mem::to_string(nvm)), configs,
               [&](const designs::NConfig& cfg, std::uint64_t footprint) {
                 return factory_.nvm_main_memory_back(cfg, nvm, footprint);
               });
}

std::vector<SuiteResult> ExperimentRunner::four_lc_sweep(
    mem::Technology l4, const std::vector<designs::EhConfig>& configs) {
  return sweep("4lc:" + std::string(mem::to_string(l4)), configs,
               [&](const designs::EhConfig& cfg, std::uint64_t footprint) {
                 return factory_.four_level_cache_back(cfg, l4, footprint);
               });
}

std::vector<SuiteResult> ExperimentRunner::four_lc_nvm_sweep(
    mem::Technology l4, mem::Technology nvm,
    const std::vector<designs::EhConfig>& configs) {
  return sweep("4lcnvm:" + std::string(mem::to_string(l4)) + ":" +
                   std::string(mem::to_string(nvm)),
               configs,
               [&](const designs::EhConfig& cfg, std::uint64_t footprint) {
                 return factory_.four_level_cache_nvm_back(cfg, l4, nvm,
                                                           footprint);
               });
}

std::vector<NdmResult> ExperimentRunner::ndm_oracle(mem::Technology nvm) {
  std::vector<NdmResult> out;
  out.reserve(suite_.size());
  for (const auto& workload : suite_) {
    try {
      const FrontCapture& capture = front(workload);
      // Profile residual traffic per named range.
      designs::RangeProfiler profiler(capture.ranges);
      capture.residual.replay(profiler);

      const auto candidates = designs::merge_ranges(profiler.usages(), 3);
      // Capacity-constrained oracle: DRAM-resident bytes must fit the NDM
      // design's fixed DRAM partition (512 MB unscaled).
      const std::uint64_t dram_capacity =
          factory_.scaled(designs::kNdmDramCapacity, 4096);
      auto placements =
          designs::enumerate_subset_placements(candidates, dram_capacity);
      // If nothing fits (a single merged range can exceed the remaining
      // budget), fall back to the placements that leave the least in DRAM.
      if (std::none_of(placements.begin(), placements.end(),
                       [](const auto& p) { return p.feasible; })) {
        std::uint64_t least = std::numeric_limits<std::uint64_t>::max();
        for (const auto& p : placements) least = std::min(least, p.dram_bytes);
        for (auto& p : placements) p.feasible = p.dram_bytes == least;
      }

      NdmResult ndm;
      ndm.workload = workload;
      double best_edp = std::numeric_limits<double>::infinity();
      for (const auto& placement : placements) {
        auto back = factory_.nvm_plus_dram_back(nvm, placement.nvm_rules,
                                                capture.footprint_bytes);
        auto result = evaluate_back("NDM-" + placement.name, workload, *back);
        ndm.all_placements.emplace_back(placement, result.normalized);
        // Oracle choice: best EDP among feasible placements that use NVM.
        if (placement.feasible && !placement.nvm_rules.empty() &&
            result.normalized.edp < best_edp) {
          best_edp = result.normalized.edp;
          ndm.chosen = placement;
          ndm.result = std::move(result);
        }
      }
      check(!ndm.chosen.nvm_rules.empty(),
            "ndm_oracle: no feasible non-trivial placement");
      out.push_back(std::move(ndm));
    } catch (...) {
      rethrow_with_context("ndm / workload " + workload);
    }
  }
  return out;
}

}  // namespace hms::sim
