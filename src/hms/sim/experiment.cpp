#include "hms/sim/experiment.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <memory>
#include <optional>
#include <string_view>

#include "hms/common/backoff.hpp"
#include "hms/common/cancel.hpp"
#include "hms/common/env.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"
#include "hms/sim/checkpoint.hpp"
#include "hms/sim/parallel.hpp"
#include "hms/sim/sharded_sweep.hpp"
#include "hms/workloads/registry.hpp"

namespace hms::sim {

ReplayMode default_replay_mode() {
  const char* env = std::getenv("HMS_REPLAY_MODE");
  const std::string_view mode = env != nullptr ? env : "";
  if (mode.empty() || mode == "chunk") return ReplayMode::ChunkMajor;
  if (mode == "config") return ReplayMode::ConfigMajor;
  if (mode == "shard") return ReplayMode::Sharded;
  throw ConfigError(with_context(
      "HMS_REPLAY_MODE", "expected \"chunk\", \"config\" or \"shard\", got \"" +
                             std::string(mode) + "\""));
}

std::uint64_t default_cell_timeout_ms() {
  return env_u64("HMS_CELL_TIMEOUT_MS", 0);
}

std::uint64_t default_retry_backoff_ms() {
  return env_u64("HMS_RETRY_BACKOFF_MS", 25);
}

workloads::WorkloadParams ExperimentConfig::params_for(
    const workloads::WorkloadInfo& info) const {
  workloads::WorkloadParams p;
  p.footprint_bytes =
      std::max<std::uint64_t>(info.paper_footprint_bytes / footprint_divisor,
                              1ull << 20);
  p.seed = seed;
  p.iterations = iterations;
  return p;
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)),
      factory_(config_.scale_divisor, mem::TechnologyRegistry::table1(),
               config_.design_options),
      suite_(config_.suite.empty() ? workloads::paper_suite()
                                   : config_.suite) {}

const FrontCapture& ExperimentRunner::front(const std::string& workload) {
  auto it = fronts_.find(workload);
  if (it != fronts_.end()) return it->second;
  // Instantiate once to read the paper metadata needed for sizing.
  auto probe = workloads::make_workload(
      workload, workloads::WorkloadParams{1ull << 20, config_.seed, 1});
  const auto params = config_.params_for(probe->info());
  probe.reset();
  auto capture = capture_front(workload, params, factory_);
  return fronts_.emplace(workload, std::move(capture)).first->second;
}

const model::DesignReport& ExperimentRunner::base_report(
    const std::string& workload) {
  auto it = base_reports_.find(workload);
  if (it != base_reports_.end()) return it->second;
  const FrontCapture& capture = front(workload);
  auto back = factory_.base_back(capture.footprint_bytes);
  // The base replay follows the same sample plan as every design cell:
  // estimating numerator and denominator from the same intervals makes the
  // clustering error partially cancel in the normalized ratios.
  const auto profile = replay_back(capture, *back, plan_for(workload));
  const auto anchor =
      model::make_anchor(profile, capture.info.memory_bound_fraction);
  anchors_.emplace(workload, anchor);
  auto report = model::evaluate("base", workload, profile, anchor);
  return base_reports_.emplace(workload, std::move(report)).first->second;
}

const SamplePlan* ExperimentRunner::plan_for(const std::string& workload) {
  if (config_.sampling != SamplingMode::SimPoint) return nullptr;
  auto it = plans_.find(workload);
  if (it == plans_.end()) {
    // Built during the serial warm-up (base_report reaches here before any
    // grid task runs); afterwards the map is read-only, so concurrent grid
    // tasks only ever hit the find above.
    const FrontCapture& capture = front(workload);
    it = plans_
             .emplace(workload,
                      build_sample_plan(capture.residual,
                                        capture.interval_profile,
                                        config_.sample_k,
                                        config_.warmup_chunks, config_.seed))
             .first;
  }
  return &it->second;
}

const model::ReferenceAnchor& ExperimentRunner::anchor(
    const std::string& workload) {
  (void)base_report(workload);  // ensures the anchor is computed
  return anchors_.at(workload);
}

WorkloadResult ExperimentRunner::evaluate_back(const std::string& design_name,
                                               const std::string& workload,
                                               cache::MemoryHierarchy& back) {
  (void)base_report(workload);  // warm the base/anchor before replaying
  const FrontCapture& capture = front(workload);
  cache::HierarchyProfile profile;
  std::vector<RepEstimate> reps;
  try {
    profile = replay_back(capture, back, plan_for(workload), &reps);
  } catch (const CancelledError& e) {
    // Preserve the kind — rethrow_with_context would flatten it into
    // SimulationError and the watchdog/interrupt distinction would vanish.
    throw CancelledError(with_context("replay_back", e.what()), e.kind());
  } catch (...) {
    rethrow_with_context("replay_back");
  }
  return finish_result(design_name, workload, profile, reps);
}

WorkloadResult ExperimentRunner::finish_result(
    const std::string& design_name, const std::string& workload,
    const cache::HierarchyProfile& profile,
    const std::vector<RepEstimate>& reps) {
  const model::DesignReport& base = base_report(workload);
  const auto& anchor = anchors_.at(workload);
  WorkloadResult result;
  result.report = model::evaluate(design_name, workload, profile, anchor);
  result.normalized = model::normalize(result.report, base);
  if (!reps.empty()) {
    // Error bars: evaluate the model per representative extrapolation and
    // take the share-weighted stddev of each normalized metric — "how much
    // would the answer move if the whole trace behaved like one cluster".
    result.sampled = true;
    std::vector<std::array<double, 5>> vals;
    vals.reserve(reps.size());
    double share_sum = 0;
    for (const auto& rep : reps) {
      const auto rep_report =
          model::evaluate(design_name, workload, rep.profile, anchor);
      const auto n = model::normalize(rep_report, base);
      vals.push_back({n.runtime, n.dynamic, n.leakage, n.total_energy, n.edp});
      share_sum += rep.share;
    }
    std::array<double, 5> mean{};
    for (std::size_t r = 0; r < reps.size(); ++r) {
      for (std::size_t m = 0; m < 5; ++m) mean[m] += reps[r].share * vals[r][m];
    }
    std::array<double, 5> var{};
    for (std::size_t r = 0; r < reps.size(); ++r) {
      for (std::size_t m = 0; m < 5; ++m) {
        const double d = vals[r][m] - mean[m] / share_sum;
        var[m] += reps[r].share * d * d;
      }
    }
    for (auto& v : var) v /= share_sum;
    result.spread.runtime = std::sqrt(var[0]);
    result.spread.dynamic = std::sqrt(var[1]);
    result.spread.leakage = std::sqrt(var[2]);
    result.spread.total_energy = std::sqrt(var[3]);
    result.spread.edp = std::sqrt(var[4]);
  }
  return result;
}

SuiteResult ExperimentRunner::average(
    std::string config_name, std::vector<WorkloadResult> results) const {
  check(!results.empty(), "SuiteResult: no workload results");
  SuiteResult suite;
  suite.config_name = std::move(config_name);
  double runtime = 0, dynamic = 0, leakage = 0, total = 0, edp = 0;
  for (const auto& r : results) {
    runtime += r.normalized.runtime;
    dynamic += r.normalized.dynamic;
    leakage += r.normalized.leakage;
    total += r.normalized.total_energy;
    edp += r.normalized.edp;
  }
  const double n = static_cast<double>(results.size());
  suite.runtime = runtime / n;
  suite.dynamic = dynamic / n;
  suite.leakage = leakage / n;
  suite.total_energy = total / n;
  suite.edp = edp / n;
  // Suite error bars: per-workload sampling spreads combined as
  // independent errors of the mean — sqrt(sum of variances) / n.
  double v_rt = 0, v_dy = 0, v_lk = 0, v_te = 0, v_ed = 0;
  for (const auto& r : results) {
    if (!r.sampled) continue;
    suite.sampled = true;
    v_rt += r.spread.runtime * r.spread.runtime;
    v_dy += r.spread.dynamic * r.spread.dynamic;
    v_lk += r.spread.leakage * r.spread.leakage;
    v_te += r.spread.total_energy * r.spread.total_energy;
    v_ed += r.spread.edp * r.spread.edp;
  }
  if (suite.sampled) {
    suite.spread.runtime = std::sqrt(v_rt) / n;
    suite.spread.dynamic = std::sqrt(v_dy) / n;
    suite.spread.leakage = std::sqrt(v_lk) / n;
    suite.spread.total_energy = std::sqrt(v_te) / n;
    suite.spread.edp = std::sqrt(v_ed) / n;
  }
  suite.per_workload = std::move(results);
  return suite;
}

template <typename Config, typename MakeBack>
std::vector<SuiteResult> ExperimentRunner::sweep(
    const std::string& label, const std::vector<Config>& configs,
    const MakeBack& make_back) {
  last_checkpoint_skips_ = 0;
  std::unique_ptr<SweepCheckpoint> checkpoint;
  if (!config_.checkpoint_path.empty()) {
    checkpoint = std::make_unique<SweepCheckpoint>(
        config_.checkpoint_path, experiment_hash(config_, label));
  }

  // Configs already present in the checkpoint are restored, not re-run.
  std::vector<std::optional<SuiteResult>> finished(configs.size());
  std::vector<std::size_t> pending;
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (checkpoint != nullptr) {
      if (const SuiteResult* done = checkpoint->find(configs[c].name)) {
        finished[c] = *done;
        ++last_checkpoint_skips_;
        continue;
      }
    }
    pending.push_back(c);
  }

  if (!pending.empty()) {
    // Warm the shared caches serially: front captures and base reports
    // insert into maps that the parallel tasks then only read. A workload
    // whose warm-up fails is excluded from the grid and recorded in every
    // pending config's failure list.
    std::vector<std::size_t> live;
    std::vector<SuiteFailure> warm_failures;
    {
      // The serial warm-up gets the same per-cell watchdog as the grid:
      // one budget per workload, re-armed before each one. An interrupt
      // aborts the sweep; a timeout degrades just that workload.
      CancellationToken warm_token(config_.cell_timeout_ms);
      const CancelScope warm_scope(warm_token);
      for (std::size_t w = 0; w < suite_.size(); ++w) {
        warm_token.rearm();
        try {
          (void)base_report(suite_[w]);
          live.push_back(w);
        } catch (const CancelledError& e) {
          if (e.kind() == CancelKind::interrupt) throw;
          warm_failures.push_back(
              {suite_[w],
               with_context("warm-up / workload " + suite_[w], e.what())});
        } catch (const std::exception& e) {
          warm_failures.push_back(
              {suite_[w],
               with_context("warm-up / workload " + suite_[w], e.what())});
        }
      }
    }
    if (live.empty()) {
      throw SimulationError(
          with_context("sweep " + label,
                       "every workload failed warm-up; first: " +
                           warm_failures.front().error));
    }

    const std::size_t width = live.size();
    std::vector<std::vector<std::optional<WorkloadResult>>> grid(
        pending.size(), std::vector<std::optional<WorkloadResult>>(width));
    std::vector<std::vector<SuiteFailure>> failures(pending.size(),
                                                    warm_failures);
    std::vector<std::size_t> remaining(pending.size(), width);

    // Assembles config p the moment its last cell settles so the checkpoint
    // is durable mid-sweep, not only at the end. Called from on_complete,
    // which the pool serializes.
    const auto settle_config = [&](std::size_t p) {
      std::vector<WorkloadResult> survivors;
      for (auto& cell : grid[p]) {
        if (cell) survivors.push_back(std::move(*cell));
      }
      if (survivors.empty()) return;  // total loss; reported after join
      const std::size_t c = pending[p];
      SuiteResult suite = average(configs[c].name, std::move(survivors));
      suite.failures = std::move(failures[p]);
      suite.partial = !suite.failures.empty();
      // Partial results are deliberately not checkpointed: a resume should
      // re-attempt the failed cells rather than fossilize them.
      if (checkpoint != nullptr && !suite.partial) checkpoint->append(suite);
      finished[c] = std::move(suite);
    };

    if (config_.replay_mode == ReplayMode::Sharded) {
      // The sharded engine owns its worker pool, claiming (workload,
      // config-shard) units with work-stealing; this layer only maps cell
      // outcomes back into the grid/failure bookkeeping, serialized by the
      // engine's on_cell callback.
      std::vector<const FrontCapture*> captures;
      captures.reserve(width);
      std::vector<const SamplePlan*> plans;
      plans.reserve(width);
      for (std::size_t l = 0; l < width; ++l) {
        captures.push_back(&fronts_.at(suite_[live[l]]));
        plans.push_back(plan_for(suite_[live[l]]));
      }
      ShardedSweepSpec spec;
      spec.captures = captures;
      spec.plans = plans;
      spec.configs = pending.size();
      spec.threads = config_.threads;
      spec.max_retries = config_.max_retries;
      spec.cell_timeout_ms = config_.cell_timeout_ms;
      spec.retry_backoff_ms = config_.retry_backoff_ms;
      spec.backoff_seed = config_.seed;
      if (FaultInjector* injector = FaultInjector::active()) {
        spec.replay_fault_base = injector->hits("sim/replay_back");
      }
      spec.make_back = [&](std::size_t p, std::size_t l) {
        return make_back(configs[pending[p]], captures[l]->footprint_bytes);
      };
      spec.on_cell = [&](std::size_t p, std::size_t l,
                         ShardedCellOutcome&& out) {
        const std::size_t c = pending[p];
        const std::string& workload = suite_[live[l]];
        const std::string cell =
            "config " + configs[c].name + " / workload " + workload;
        if (out.ok) {
          try {
            grid[p][l] =
                finish_result(configs[c].name, workload, out.profile, out.reps);
          } catch (const std::exception& e) {
            failures[p].push_back({workload, with_context(cell, e.what())});
          }
        } else if (out.constructed) {
          failures[p].push_back(
              {workload,
               with_context(cell, with_context("replay_back", out.error))});
        } else {
          failures[p].push_back({workload, with_context(cell, out.error)});
        }
        if (--remaining[p] == 0) settle_config(p);
      };
      run_sharded_sweep(spec);
      // (Falls through to the shared assembly below; every cell settled.)
    } else {
      std::vector<ParallelTask> tasks;
      ParallelOptions options;
      options.threads = config_.threads;
      options.policy = ErrorPolicy::degrade;
      options.stop_on_interrupt = true;
      options.retry_backoff_ms = config_.retry_backoff_ms;
      options.backoff_seed = config_.seed;

      // Chunk-major: per-cell errors filled in by the workload tasks
      // (empty string = cell succeeded), harvested in on_complete.
      std::vector<std::vector<std::string>> cell_errors;

      if (config_.replay_mode == ReplayMode::ChunkMajor) {
        // One task per workload: every pending config's back is fed from a
        // single decode pass over the residual chunks (replay_back_many). A
        // cell that fails falls back to bounded standalone-replay retries,
        // mirroring the config-major transient-retry semantics.
        cell_errors.assign(pending.size(), std::vector<std::string>(width));
        tasks.reserve(width);
        for (std::size_t l = 0; l < width; ++l) {
          ParallelTask task;
          task.label = "workload " + suite_[live[l]];
          task.fn = [this, &configs, &make_back, &grid, &cell_errors, &pending,
                     &live, l] {
            const std::string& workload = suite_[live[l]];
            const FrontCapture& capture = fronts_.at(workload);
            // Plans were built during the serial warm-up; this is a pure
            // map read, safe across concurrent workload tasks.
            const SamplePlan* const plan = plan_for(workload);

            // Per-task watchdog: replay_back_many polls this as the
            // thread's ambient token and re-arms it itself whenever a
            // timed-out cell is dropped.
            CancellationToken token(config_.cell_timeout_ms);
            const CancelScope token_scope(token);

            // Build one back per pending config; a config whose construction
            // fails is excluded from the replay (its cell error is final —
            // retrying a deterministic ConfigError cannot help).
            std::vector<std::unique_ptr<cache::MemoryHierarchy>> owned(
                pending.size());
            std::vector<cache::MemoryHierarchy*> backs;
            std::vector<std::size_t> built;  // index into pending, per back
            backs.reserve(pending.size());
            built.reserve(pending.size());
            for (std::size_t p = 0; p < pending.size(); ++p) {
              const std::size_t c = pending[p];
              const std::string cell =
                  "config " + configs[c].name + " / workload " + workload;
              try {
                owned[p] = make_back(configs[c], capture.footprint_bytes);
                backs.push_back(owned[p].get());
                built.push_back(p);
              } catch (const std::exception& e) {
                cell_errors[p][l] = with_context(cell, e.what());
              }
            }

            const auto outcomes = replay_back_many(capture, backs, plan);
            for (std::size_t b = 0; b < outcomes.size(); ++b) {
              const std::size_t p = built[b];
              const std::size_t c = pending[p];
              const std::string cell =
                  "config " + configs[c].name + " / workload " + workload;
              if (outcomes[b].ok) {
                grid[p][l] = finish_result(configs[c].name, workload,
                                           outcomes[b].profile,
                                           outcomes[b].reps);
                continue;
              }
              cell_errors[p][l] =
                  with_context(cell, with_context("replay_back",
                                                  outcomes[b].error));
              // Bounded per-cell retries with a fresh back and a standalone
              // replay (same ordered stream, so the result stays identical),
              // spaced by deterministic exponential backoff and each given
              // a fresh watchdog budget.
              const std::uint64_t cell_seed =
                  config_.seed ^
                  ((static_cast<std::uint64_t>(p) << 32) ^ l);
              bool stop_retrying = false;
              for (std::uint32_t attempt = 0;
                   attempt < config_.max_retries && !stop_retrying;
                   ++attempt) {
                if (config_.retry_backoff_ms != 0) {
                  const std::uint64_t delay = backoff_delay_ms(
                      attempt, cell_seed, config_.retry_backoff_ms);
                  if (!backoff_sleep(delay)) break;  // interrupted mid-wait
                }
                token.rearm();
                try {
                  auto back = make_back(configs[c], capture.footprint_bytes);
                  grid[p][l] = evaluate_back(configs[c].name, workload, *back);
                  cell_errors[p][l].clear();
                  break;
                } catch (const CancelledError& e) {
                  cell_errors[p][l] = with_context(cell, e.what());
                  if (e.kind() == CancelKind::interrupt) stop_retrying = true;
                } catch (const std::exception& e) {
                  cell_errors[p][l] = with_context(cell, e.what());
                }
              }
              token.rearm();  // fresh budget for the next cell's retries
            }
          };
          tasks.push_back(std::move(task));
        }
        // Retries are per cell inside the task; a retry at task granularity
        // would re-run every config's replay.
        options.max_retries = 0;
        options.on_complete = [&](std::size_t l, const TaskReport& report) {
          for (std::size_t p = 0; p < pending.size(); ++p) {
            if (report.outcome == TaskOutcome::failed) {
              // The whole workload column died (e.g. out of memory building
              // the backs vector): every pending config loses this cell.
              failures[p].push_back({suite_[live[l]], report.error});
            } else if (!cell_errors[p][l].empty()) {
              failures[p].push_back({suite_[live[l]], cell_errors[p][l]});
            }
            if (--remaining[p] == 0) settle_config(p);
          }
        };
      } else {
        tasks.reserve(pending.size() * width);
        for (std::size_t p = 0; p < pending.size(); ++p) {
          for (std::size_t l = 0; l < width; ++l) {
            const std::size_t c = pending[p];
            ParallelTask task;
            task.label =
                "config " + configs[c].name + " / workload " + suite_[live[l]];
            task.transient = config_.max_retries > 0;
            task.fn = [this, &configs, &make_back, &grid, &live, c, p, l] {
              const std::string& workload = suite_[live[l]];
              // One watchdog budget per attempt: the task body IS one
              // attempt (run_one re-invokes it on retry), so arming here
              // re-arms naturally.
              CancellationToken token(config_.cell_timeout_ms);
              const CancelScope token_scope(token);
              const std::string cell =
                  "config " + configs[c].name + " / workload " + workload;
              try {
                auto back =
                    make_back(configs[c], fronts_.at(workload).footprint_bytes);
                grid[p][l] = evaluate_back(configs[c].name, workload, *back);
              } catch (const CancelledError& e) {
                throw CancelledError(with_context(cell, e.what()), e.kind());
              } catch (...) {
                rethrow_with_context(cell);
              }
            };
            tasks.push_back(std::move(task));
          }
        }
        options.max_retries = config_.max_retries;
        options.on_complete = [&](std::size_t index, const TaskReport& report) {
          const std::size_t p = index / width;
          const std::size_t l = index % width;
          if (report.outcome == TaskOutcome::failed) {
            failures[p].push_back({suite_[live[l]], report.error});
          }
          if (--remaining[p] == 0) settle_config(p);
        };
      }
      (void)run_parallel(std::move(tasks), options);
    }

    // A process interrupt aborts the sweep here — after the engines have
    // drained (completed configs are already fsync'd into the checkpoint)
    // but before assembly, which would misreport unworked cells as config
    // failures. Callers map the kind to kExitInterrupted.
    if (const int sig = interrupt_signal(); sig != 0) {
      throw CancelledError("sweep " + label + ": interrupted by signal " +
                               std::to_string(sig),
                           CancelKind::interrupt);
    }
  }

  std::vector<SuiteResult> out;
  out.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    if (!finished[c]) {
      // Degrading below one surviving workload would leave nothing to plot.
      throw SimulationError("sweep " + label + ": config " + configs[c].name +
                            " failed for every workload");
    }
    out.push_back(std::move(*finished[c]));
  }
  return out;
}

std::vector<SuiteResult> ExperimentRunner::nmm_sweep(
    mem::Technology nvm, const std::vector<designs::NConfig>& configs) {
  return sweep("nmm:" + std::string(mem::to_string(nvm)), configs,
               [&](const designs::NConfig& cfg, std::uint64_t footprint) {
                 return factory_.nvm_main_memory_back(cfg, nvm, footprint);
               });
}

std::vector<SuiteResult> ExperimentRunner::four_lc_sweep(
    mem::Technology l4, const std::vector<designs::EhConfig>& configs) {
  return sweep("4lc:" + std::string(mem::to_string(l4)), configs,
               [&](const designs::EhConfig& cfg, std::uint64_t footprint) {
                 return factory_.four_level_cache_back(cfg, l4, footprint);
               });
}

std::vector<SuiteResult> ExperimentRunner::four_lc_nvm_sweep(
    mem::Technology l4, mem::Technology nvm,
    const std::vector<designs::EhConfig>& configs) {
  return sweep("4lcnvm:" + std::string(mem::to_string(l4)) + ":" +
                   std::string(mem::to_string(nvm)),
               configs,
               [&](const designs::EhConfig& cfg, std::uint64_t footprint) {
                 return factory_.four_level_cache_nvm_back(cfg, l4, nvm,
                                                           footprint);
               });
}

std::vector<NdmResult> ExperimentRunner::ndm_oracle(mem::Technology nvm) {
  std::vector<NdmResult> out;
  out.reserve(suite_.size());
  for (const auto& workload : suite_) {
    try {
      const FrontCapture& capture = front(workload);
      // Profile residual traffic per named range.
      designs::RangeProfiler profiler(capture.ranges);
      capture.residual.replay(profiler);

      const auto candidates = designs::merge_ranges(profiler.usages(), 3);
      // Capacity-constrained oracle: DRAM-resident bytes must fit the NDM
      // design's fixed DRAM partition (512 MB unscaled).
      const std::uint64_t dram_capacity =
          factory_.scaled(designs::kNdmDramCapacity, 4096);
      auto placements =
          designs::enumerate_subset_placements(candidates, dram_capacity);
      // If nothing fits (a single merged range can exceed the remaining
      // budget), fall back to the placements that leave the least in DRAM.
      if (std::none_of(placements.begin(), placements.end(),
                       [](const auto& p) { return p.feasible; })) {
        std::uint64_t least = std::numeric_limits<std::uint64_t>::max();
        for (const auto& p : placements) least = std::min(least, p.dram_bytes);
        for (auto& p : placements) p.feasible = p.dram_bytes == least;
      }

      NdmResult ndm;
      ndm.workload = workload;
      double best_edp = std::numeric_limits<double>::infinity();
      for (const auto& placement : placements) {
        auto back = factory_.nvm_plus_dram_back(nvm, placement.nvm_rules,
                                                capture.footprint_bytes);
        auto result = evaluate_back("NDM-" + placement.name, workload, *back);
        ndm.all_placements.emplace_back(placement, result.normalized);
        // Oracle choice: best EDP among feasible placements that use NVM.
        if (placement.feasible && !placement.nvm_rules.empty() &&
            result.normalized.edp < best_edp) {
          best_edp = result.normalized.edp;
          ndm.chosen = placement;
          ndm.result = std::move(result);
        }
      }
      check(!ndm.chosen.nvm_rules.empty(),
            "ndm_oracle: no feasible non-trivial placement");
      out.push_back(std::move(ndm));
    } catch (...) {
      rethrow_with_context("ndm / workload " + workload);
    }
  }
  return out;
}

}  // namespace hms::sim
