#include "hms/sim/experiment.hpp"

#include <algorithm>
#include <limits>

#include "hms/common/error.hpp"
#include "hms/sim/parallel.hpp"
#include "hms/workloads/registry.hpp"

namespace hms::sim {

workloads::WorkloadParams ExperimentConfig::params_for(
    const workloads::WorkloadInfo& info) const {
  workloads::WorkloadParams p;
  p.footprint_bytes =
      std::max<std::uint64_t>(info.paper_footprint_bytes / footprint_divisor,
                              1ull << 20);
  p.seed = seed;
  p.iterations = iterations;
  return p;
}

ExperimentRunner::ExperimentRunner(ExperimentConfig config)
    : config_(std::move(config)),
      factory_(config_.scale_divisor, mem::TechnologyRegistry::table1(),
               config_.design_options),
      suite_(config_.suite.empty() ? workloads::paper_suite()
                                   : config_.suite) {}

const FrontCapture& ExperimentRunner::front(const std::string& workload) {
  auto it = fronts_.find(workload);
  if (it != fronts_.end()) return it->second;
  // Instantiate once to read the paper metadata needed for sizing.
  auto probe = workloads::make_workload(
      workload, workloads::WorkloadParams{1ull << 20, config_.seed, 1});
  const auto params = config_.params_for(probe->info());
  probe.reset();
  auto capture = capture_front(workload, params, factory_);
  return fronts_.emplace(workload, std::move(capture)).first->second;
}

const model::DesignReport& ExperimentRunner::base_report(
    const std::string& workload) {
  auto it = base_reports_.find(workload);
  if (it != base_reports_.end()) return it->second;
  const FrontCapture& capture = front(workload);
  auto back = factory_.base_back(capture.footprint_bytes);
  const auto profile = replay_back(capture, *back);
  const auto anchor =
      model::make_anchor(profile, capture.info.memory_bound_fraction);
  anchors_.emplace(workload, anchor);
  auto report = model::evaluate("base", workload, profile, anchor);
  return base_reports_.emplace(workload, std::move(report)).first->second;
}

const model::ReferenceAnchor& ExperimentRunner::anchor(
    const std::string& workload) {
  (void)base_report(workload);  // ensures the anchor is computed
  return anchors_.at(workload);
}

WorkloadResult ExperimentRunner::evaluate_back(const std::string& design_name,
                                               const std::string& workload,
                                               cache::MemoryHierarchy& back) {
  const model::DesignReport& base = base_report(workload);
  const FrontCapture& capture = front(workload);
  const auto profile = replay_back(capture, back);
  const auto& anchor = anchors_.at(workload);
  WorkloadResult result;
  result.report = model::evaluate(design_name, workload, profile, anchor);
  result.normalized = model::normalize(result.report, base);
  return result;
}

SuiteResult ExperimentRunner::average(
    std::string config_name, std::vector<WorkloadResult> results) const {
  check(!results.empty(), "SuiteResult: no workload results");
  SuiteResult suite;
  suite.config_name = std::move(config_name);
  double runtime = 0, dynamic = 0, leakage = 0, total = 0, edp = 0;
  for (const auto& r : results) {
    runtime += r.normalized.runtime;
    dynamic += r.normalized.dynamic;
    leakage += r.normalized.leakage;
    total += r.normalized.total_energy;
    edp += r.normalized.edp;
  }
  const double n = static_cast<double>(results.size());
  suite.runtime = runtime / n;
  suite.dynamic = dynamic / n;
  suite.leakage = leakage / n;
  suite.total_energy = total / n;
  suite.edp = edp / n;
  suite.per_workload = std::move(results);
  return suite;
}

template <typename Config, typename MakeBack>
std::vector<SuiteResult> ExperimentRunner::sweep(
    const std::vector<Config>& configs, const MakeBack& make_back) {
  // Warm the shared caches serially: front captures and base reports
  // insert into maps that the parallel tasks then only read.
  for (const auto& workload : suite_) {
    (void)base_report(workload);
  }
  std::vector<std::vector<WorkloadResult>> grid(
      configs.size(), std::vector<WorkloadResult>(suite_.size()));
  std::vector<std::function<void()>> tasks;
  tasks.reserve(configs.size() * suite_.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    for (std::size_t w = 0; w < suite_.size(); ++w) {
      tasks.emplace_back([this, &configs, &make_back, &grid, c, w] {
        const auto& workload = suite_[w];
        auto back = make_back(configs[c],
                              fronts_.at(workload).footprint_bytes);
        grid[c][w] = evaluate_back(configs[c].name, workload, *back);
      });
    }
  }
  run_parallel(std::move(tasks), config_.threads);

  std::vector<SuiteResult> out;
  out.reserve(configs.size());
  for (std::size_t c = 0; c < configs.size(); ++c) {
    out.push_back(average(configs[c].name, std::move(grid[c])));
  }
  return out;
}

std::vector<SuiteResult> ExperimentRunner::nmm_sweep(
    mem::Technology nvm, const std::vector<designs::NConfig>& configs) {
  return sweep(configs,
               [&](const designs::NConfig& cfg, std::uint64_t footprint) {
                 return factory_.nvm_main_memory_back(cfg, nvm, footprint);
               });
}

std::vector<SuiteResult> ExperimentRunner::four_lc_sweep(
    mem::Technology l4, const std::vector<designs::EhConfig>& configs) {
  return sweep(configs,
               [&](const designs::EhConfig& cfg, std::uint64_t footprint) {
                 return factory_.four_level_cache_back(cfg, l4, footprint);
               });
}

std::vector<SuiteResult> ExperimentRunner::four_lc_nvm_sweep(
    mem::Technology l4, mem::Technology nvm,
    const std::vector<designs::EhConfig>& configs) {
  return sweep(configs,
               [&](const designs::EhConfig& cfg, std::uint64_t footprint) {
                 return factory_.four_level_cache_nvm_back(cfg, l4, nvm,
                                                           footprint);
               });
}

std::vector<NdmResult> ExperimentRunner::ndm_oracle(mem::Technology nvm) {
  std::vector<NdmResult> out;
  out.reserve(suite_.size());
  for (const auto& workload : suite_) {
    const FrontCapture& capture = front(workload);
    // Profile residual traffic per named range.
    designs::RangeProfiler profiler(capture.ranges);
    capture.residual.replay(profiler);

    const auto candidates = designs::merge_ranges(profiler.usages(), 3);
    // Capacity-constrained oracle: DRAM-resident bytes must fit the NDM
    // design's fixed DRAM partition (512 MB unscaled).
    const std::uint64_t dram_capacity =
        factory_.scaled(designs::kNdmDramCapacity, 4096);
    auto placements =
        designs::enumerate_subset_placements(candidates, dram_capacity);
    // If nothing fits (a single merged range can exceed the remaining
    // budget), fall back to the placements that leave the least in DRAM.
    if (std::none_of(placements.begin(), placements.end(),
                     [](const auto& p) { return p.feasible; })) {
      std::uint64_t least = std::numeric_limits<std::uint64_t>::max();
      for (const auto& p : placements) least = std::min(least, p.dram_bytes);
      for (auto& p : placements) p.feasible = p.dram_bytes == least;
    }

    NdmResult ndm;
    ndm.workload = workload;
    double best_edp = std::numeric_limits<double>::infinity();
    for (const auto& placement : placements) {
      auto back = factory_.nvm_plus_dram_back(nvm, placement.nvm_rules,
                                              capture.footprint_bytes);
      auto result = evaluate_back("NDM-" + placement.name, workload, *back);
      ndm.all_placements.emplace_back(placement, result.normalized);
      // Oracle choice: best EDP among feasible placements that use NVM.
      if (placement.feasible && !placement.nvm_rules.empty() &&
          result.normalized.edp < best_edp) {
        best_edp = result.normalized.edp;
        ndm.chosen = placement;
        ndm.result = std::move(result);
      }
    }
    check(!ndm.chosen.nvm_rules.empty(),
          "ndm_oracle: no feasible non-trivial placement");
    out.push_back(std::move(ndm));
  }
  return out;
}

}  // namespace hms::sim
