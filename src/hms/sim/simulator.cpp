#include "hms/sim/simulator.hpp"

#include "hms/common/cancel.hpp"
#include "hms/common/fault.hpp"

namespace hms::sim {

cache::HierarchyProfile simulate(workloads::Workload& workload,
                                 cache::MemoryHierarchy& h) {
  workload.run(h);
  return h.profile();
}

FrontCapture capture_front(const std::string& workload_name,
                           const workloads::WorkloadParams& params,
                           const designs::DesignFactory& factory) {
  HMS_FAULT_POINT("sim/capture_front");
  FrontCapture capture;
  capture.workload_name = workload_name;
  auto workload = workloads::make_workload(workload_name, params);
  capture.info = workload->info();
  capture.footprint_bytes = workload->footprint_bytes();
  capture.ranges = workload->address_space().ranges();

  // Pre-size the residual buffer: the stream behind L3 is line-granular
  // fetches plus write-backs, bounded by roughly twice the footprint's line
  // count per sweep over the data. Reserving up front avoids the capture
  // vector's doubling reallocations; shrink_to_fit afterwards returns the
  // slack, since captures are held live for a whole design sweep.
  const auto fronts = factory.front_levels();
  if (!fronts.empty() && capture.footprint_bytes != 0) {
    const std::uint64_t line = fronts.back().cache.line_bytes;
    capture.residual.reserve(
        static_cast<std::size_t>(2 * (capture.footprint_bytes / line + 1)));
  }

  auto front = factory.front(capture.residual);
  workload->run(*front);
  capture.front_profile = front->profile();
  capture.residual.shrink_to_fit();
  return capture;
}

cache::HierarchyProfile replay_back(const FrontCapture& capture,
                                    cache::MemoryHierarchy& back) {
  HMS_FAULT_POINT("sim/replay_back");
  // Chunk granularity is the replay's cancellation point: the ambient
  // token (armed by the engine running this cell) turns a hung cell into
  // a CancelledError instead of an unbounded stall.
  CancellationToken* const token = CancellationToken::current();
  std::vector<trace::MemoryAccess> scratch;
  const std::size_t chunks = capture.residual.chunk_count();
  for (std::size_t i = 0; i < chunks; ++i) {
    if (token != nullptr) token->throw_if_cancelled("sim/replay_back");
    capture.residual.decode_chunk(i, scratch);
    back.access_batch(scratch);
  }
  return cache::HierarchyProfile::combine(capture.front_profile,
                                          back.profile());
}

std::vector<BackReplayOutcome> replay_back_many(
    const FrontCapture& capture,
    std::span<cache::MemoryHierarchy* const> backs) {
  std::vector<BackReplayOutcome> outcomes(backs.size());
  // Hit the replay fault site once per back, in order, before touching the
  // stream: a config-major sweep hits "sim/replay_back" once per cell, and
  // keeping the same per-cell hit sequence keeps deterministic fault
  // armings (skip_first / max_fires) meaningful across replay modes.
  CancellationToken* const token = CancellationToken::current();
  std::vector<std::size_t> live;
  live.reserve(backs.size());
  for (std::size_t b = 0; b < backs.size(); ++b) {
    try {
      HMS_FAULT_POINT("sim/replay_back");
      live.push_back(b);
    } catch (const CancelledError& e) {
      if (e.kind() == CancelKind::interrupt) {
        // Shutdown outranks the sweep: fail this and every later cell.
        for (std::size_t rest = b; rest < backs.size(); ++rest) {
          outcomes[rest].error = e.what();
        }
        return outcomes;
      }
      // A hung cell (stalled fault site) degrades alone; survivors get a
      // fresh watchdog budget.
      outcomes[b].error = e.what();
      if (token != nullptr) token->rearm();
    } catch (const std::exception& e) {
      outcomes[b].error = e.what();
    }
  }

  std::vector<trace::MemoryAccess> scratch;
  const std::size_t chunks = capture.residual.chunk_count();
  for (std::size_t i = 0; i < chunks && !live.empty(); ++i) {
    if (token != nullptr && token->cancelled()) {
      // A chunk-boundary cancellation has no single culprit cell: the
      // whole remaining column fails (DESIGN.md §6 watchdog semantics).
      try {
        token->throw_if_cancelled("sim/replay_back_many");
      } catch (const CancelledError& e) {
        for (const std::size_t b : live) outcomes[b].error = e.what();
      }
      live.clear();
      break;
    }
    try {
      capture.residual.decode_chunk(i, scratch);
    } catch (const std::exception& e) {
      // The shared stream is gone; every back still in flight fails.
      for (const std::size_t b : live) outcomes[b].error = e.what();
      live.clear();
      break;
    }
    // Dropping a back mid-stream must not disturb the others: erase it from
    // the live set and keep feeding the rest.
    bool interrupted = false;
    std::string interrupt_error;
    std::erase_if(live, [&](std::size_t b) {
      if (interrupted) return false;  // mass-failed below
      try {
        backs[b]->access_batch(scratch);
        return false;
      } catch (const CancelledError& e) {
        outcomes[b].error = e.what();
        if (e.kind() == CancelKind::interrupt) {
          interrupted = true;
          interrupt_error = e.what();
        } else if (token != nullptr) {
          token->rearm();  // the hung cell is gone; give survivors time
        }
        return true;
      } catch (const std::exception& e) {
        outcomes[b].error = e.what();
        return true;
      }
    });
    if (interrupted) {
      for (const std::size_t b : live) outcomes[b].error = interrupt_error;
      live.clear();
    }
  }

  for (const std::size_t b : live) {
    outcomes[b].ok = true;
    outcomes[b].profile = cache::HierarchyProfile::combine(
        capture.front_profile, backs[b]->profile());
  }
  return outcomes;
}

}  // namespace hms::sim
