#include "hms/sim/simulator.hpp"

#include "hms/common/fault.hpp"

namespace hms::sim {

cache::HierarchyProfile simulate(workloads::Workload& workload,
                                 cache::MemoryHierarchy& h) {
  workload.run(h);
  return h.profile();
}

FrontCapture capture_front(const std::string& workload_name,
                           const workloads::WorkloadParams& params,
                           const designs::DesignFactory& factory) {
  HMS_FAULT_POINT("sim/capture_front");
  FrontCapture capture;
  capture.workload_name = workload_name;
  auto workload = workloads::make_workload(workload_name, params);
  capture.info = workload->info();
  capture.footprint_bytes = workload->footprint_bytes();
  capture.ranges = workload->address_space().ranges();

  auto front = factory.front(capture.residual);
  workload->run(*front);
  capture.front_profile = front->profile();
  return capture;
}

cache::HierarchyProfile replay_back(const FrontCapture& capture,
                                    cache::MemoryHierarchy& back) {
  HMS_FAULT_POINT("sim/replay_back");
  capture.residual.replay(back);
  return cache::HierarchyProfile::combine(capture.front_profile,
                                          back.profile());
}

}  // namespace hms::sim
