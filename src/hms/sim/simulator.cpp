#include "hms/sim/simulator.hpp"

#include "hms/common/fault.hpp"

namespace hms::sim {

cache::HierarchyProfile simulate(workloads::Workload& workload,
                                 cache::MemoryHierarchy& h) {
  workload.run(h);
  return h.profile();
}

FrontCapture capture_front(const std::string& workload_name,
                           const workloads::WorkloadParams& params,
                           const designs::DesignFactory& factory) {
  HMS_FAULT_POINT("sim/capture_front");
  FrontCapture capture;
  capture.workload_name = workload_name;
  auto workload = workloads::make_workload(workload_name, params);
  capture.info = workload->info();
  capture.footprint_bytes = workload->footprint_bytes();
  capture.ranges = workload->address_space().ranges();

  // Pre-size the residual buffer: the stream behind L3 is line-granular
  // fetches plus write-backs, bounded by roughly twice the footprint's line
  // count per sweep over the data. Reserving up front avoids the capture
  // vector's doubling reallocations; shrink_to_fit afterwards returns the
  // slack, since captures are held live for a whole design sweep.
  const auto fronts = factory.front_levels();
  if (!fronts.empty() && capture.footprint_bytes != 0) {
    const std::uint64_t line = fronts.back().cache.line_bytes;
    capture.residual.reserve(
        static_cast<std::size_t>(2 * (capture.footprint_bytes / line + 1)));
  }

  auto front = factory.front(capture.residual);
  workload->run(*front);
  capture.front_profile = front->profile();
  capture.residual.shrink_to_fit();
  return capture;
}

cache::HierarchyProfile replay_back(const FrontCapture& capture,
                                    cache::MemoryHierarchy& back) {
  HMS_FAULT_POINT("sim/replay_back");
  back.access_batch(capture.residual.entries());
  return cache::HierarchyProfile::combine(capture.front_profile,
                                          back.profile());
}

}  // namespace hms::sim
