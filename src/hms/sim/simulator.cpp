#include "hms/sim/simulator.hpp"

#include "hms/common/cancel.hpp"
#include "hms/common/env.hpp"
#include "hms/common/fault.hpp"
#include "hms/trace/trace_store.hpp"

namespace hms::sim {

namespace {

/// capture_front's body without the fault hit, shared with the cached path
/// (which must hit "sim/capture_front" exactly once whether the store hits
/// or misses).
FrontCapture capture_front_impl(const std::string& workload_name,
                                const workloads::WorkloadParams& params,
                                const designs::DesignFactory& factory);

}  // namespace

cache::HierarchyProfile simulate(workloads::Workload& workload,
                                 cache::MemoryHierarchy& h) {
  workload.run(h);
  return h.profile();
}

FrontCapture capture_front(const std::string& workload_name,
                           const workloads::WorkloadParams& params,
                           const designs::DesignFactory& factory) {
  HMS_FAULT_POINT("sim/capture_front");
  return capture_front_impl(workload_name, params, factory);
}

namespace {

FrontCapture capture_front_impl(const std::string& workload_name,
                                const workloads::WorkloadParams& params,
                                const designs::DesignFactory& factory) {
  FrontCapture capture;
  capture.workload_name = workload_name;
  auto workload = workloads::make_workload(workload_name, params);
  capture.info = workload->info();
  capture.footprint_bytes = workload->footprint_bytes();
  capture.ranges = workload->address_space().ranges();

  // Pre-size the residual buffer: the stream behind L3 is line-granular
  // fetches plus write-backs, bounded by roughly twice the footprint's line
  // count per sweep over the data. Reserving up front avoids the capture
  // vector's doubling reallocations; shrink_to_fit afterwards returns the
  // slack, since captures are held live for a whole design sweep.
  const auto fronts = factory.front_levels();
  if (!fronts.empty() && capture.footprint_bytes != 0) {
    const std::uint64_t line = fronts.back().cache.line_bytes;
    capture.residual.reserve(
        static_cast<std::size_t>(2 * (capture.footprint_bytes / line + 1)));
  }

  // Attach the interval profile only for the duration of the run: the
  // buffer stores a raw pointer, and the capture (profile included) is
  // moved into caches afterwards — a still-attached pointer would dangle.
  capture.residual.attach_interval_profile(&capture.interval_profile);
  auto front = factory.front(capture.residual);
  workload->run(*front);
  capture.residual.attach_interval_profile(nullptr);
  capture.front_profile = front->profile();
  capture.residual.shrink_to_fit();
  return capture;
}

void put_tech(trace::StoreWriter& w, const mem::TechnologyParams& t) {
  w.u8(static_cast<std::uint8_t>(t.technology));
  w.f64(t.read_latency.value);
  w.f64(t.write_latency.value);
  w.f64(t.read_pj_per_bit);
  w.f64(t.write_pj_per_bit);
  w.f64(t.static_power_per_mib.value);
  w.u8(t.non_volatile ? 1 : 0);
  w.u64(t.endurance_writes);
}

mem::TechnologyParams get_tech(trace::StoreReader& r) {
  mem::TechnologyParams t;
  t.technology = static_cast<mem::Technology>(r.u8());
  t.read_latency = Time::from_ns(r.f64());
  t.write_latency = Time::from_ns(r.f64());
  t.read_pj_per_bit = r.f64();
  t.write_pj_per_bit = r.f64();
  t.static_power_per_mib = Power::from_mw(r.f64());
  t.non_volatile = r.u8() != 0;
  t.endurance_writes = r.u64();
  return t;
}

/// The sim-layer metadata record of a stored capture: a key echo (checked
/// against the lookup key on load — the file name and stamped hash already
/// match, this catches hash collisions at the content level), followed by
/// everything in FrontCapture except the residual stream and interval
/// profile, which get their own records.
std::string encode_capture_metadata(const FrontCapture& capture,
                                    const workloads::WorkloadParams& params,
                                    const designs::DesignFactory& factory) {
  trace::StoreWriter w;
  w.str(capture.workload_name);
  w.u64(params.footprint_bytes);
  w.u64(params.seed);
  w.u64(params.iterations);
  w.u64(factory.scale_divisor());
  w.u32(trace::kTraceEncoderVersion);

  w.str(capture.info.name);
  w.str(capture.info.suite);
  w.str(capture.info.inputs);
  w.u64(capture.info.paper_footprint_bytes);
  w.f64(capture.info.paper_reference_seconds);
  w.f64(capture.info.memory_bound_fraction);
  w.u64(capture.footprint_bytes);

  w.varint(capture.ranges.size());
  for (const auto& range : capture.ranges) {
    w.str(range.name);
    w.u64(range.base);
    w.u64(range.length);
  }

  const cache::HierarchyProfile& profile = capture.front_profile;
  w.varint(profile.references);
  w.varint(profile.levels.size());
  for (const auto& level : profile.levels) {
    w.str(level.name);
    put_tech(w, level.tech);
    w.u64(level.capacity_bytes);
    w.u64(level.loads);
    w.u64(level.stores);
    w.u64(level.load_bytes);
    w.u64(level.store_bytes);
    w.u8(level.is_cache ? 1 : 0);
    const cache::CacheStats& s = level.cache_stats;
    w.u64(s.load_hits);
    w.u64(s.load_misses);
    w.u64(s.store_hits);
    w.u64(s.store_misses);
    w.u64(s.evictions);
    w.u64(s.writebacks);
    w.u64(s.prefetch_fills);
    w.u64(s.prefetch_useful);
  }
  return w.take();
}

/// Decodes a stored entry into a FrontCapture, verifying the key echo
/// against what the caller is actually asking for. Throws TraceError on
/// any mismatch or malformed payload (the caller recaptures).
FrontCapture decode_stored_capture(const trace::TraceStoreEntry& entry,
                                   const std::string& workload_name,
                                   const workloads::WorkloadParams& params,
                                   const designs::DesignFactory& factory) {
  trace::StoreReader r(entry.metadata);
  if (r.str() != workload_name || r.u64() != params.footprint_bytes ||
      r.u64() != params.seed || r.u64() != params.iterations ||
      r.u64() != factory.scale_divisor() ||
      r.u32() != trace::kTraceEncoderVersion) {
    throw TraceError("trace store: capture key mismatch");
  }

  FrontCapture capture;
  capture.workload_name = workload_name;
  capture.info.name = r.str();
  capture.info.suite = r.str();
  capture.info.inputs = r.str();
  capture.info.paper_footprint_bytes = r.u64();
  capture.info.paper_reference_seconds = r.f64();
  capture.info.memory_bound_fraction = r.f64();
  capture.footprint_bytes = r.u64();

  const auto range_count = static_cast<std::size_t>(r.varint());
  if (range_count > r.remaining()) {
    throw TraceError("trace store: range count exceeds payload");
  }
  capture.ranges.reserve(range_count);
  for (std::size_t i = 0; i < range_count; ++i) {
    workloads::AddressRange range;
    range.name = r.str();
    range.base = r.u64();
    range.length = r.u64();
    capture.ranges.push_back(std::move(range));
  }

  capture.front_profile.references = r.varint();
  const auto level_count = static_cast<std::size_t>(r.varint());
  if (level_count > r.remaining()) {
    throw TraceError("trace store: level count exceeds payload");
  }
  capture.front_profile.levels.reserve(level_count);
  for (std::size_t i = 0; i < level_count; ++i) {
    cache::LevelProfile level;
    level.name = r.str();
    level.tech = get_tech(r);
    level.capacity_bytes = r.u64();
    level.loads = r.u64();
    level.stores = r.u64();
    level.load_bytes = r.u64();
    level.store_bytes = r.u64();
    level.is_cache = r.u8() != 0;
    cache::CacheStats& s = level.cache_stats;
    s.load_hits = r.u64();
    s.load_misses = r.u64();
    s.store_hits = r.u64();
    s.store_misses = r.u64();
    s.evictions = r.u64();
    s.writebacks = r.u64();
    s.prefetch_fills = r.u64();
    s.prefetch_useful = r.u64();
    capture.front_profile.levels.push_back(std::move(level));
  }
  r.expect_done();

  capture.interval_profile =
      trace::IntervalProfile::deserialize(entry.interval_profile);
  capture.residual = trace::ChunkedTraceBuffer::deserialize(entry.residual);
  return capture;
}

}  // namespace

std::string default_trace_cache_dir() {
  return env_string("HMS_TRACE_CACHE", "");
}

std::uint64_t capture_hash(const std::string& workload_name,
                           const workloads::WorkloadParams& params,
                           const designs::DesignFactory& factory) {
  trace::Fnv1a h;
  h.mix(std::string_view("hms-front-capture"));
  h.mix(workload_name);
  h.mix(params.footprint_bytes);
  h.mix(params.seed);
  h.mix(static_cast<std::uint64_t>(params.iterations));
  h.mix(factory.scale_divisor());
  h.mix(static_cast<std::uint64_t>(trace::kTraceEncoderVersion));
  return h.digest();
}

FrontCapture capture_front_cached(const std::string& workload_name,
                                  const workloads::WorkloadParams& params,
                                  const designs::DesignFactory& factory,
                                  const trace::TraceStore* store) {
  HMS_FAULT_POINT("sim/capture_front");
  if (store == nullptr) return capture_front_impl(workload_name, params, factory);
  const std::uint64_t key = capture_hash(workload_name, params, factory);
  try {
    if (std::optional<trace::TraceStoreEntry> entry = store->load(key)) {
      return decode_stored_capture(*entry, workload_name, params, factory);
    }
  } catch (const CancelledError&) {
    throw;  // the watchdog / an interrupt outranks the cache
  } catch (const std::exception&) {
    // Any store-side failure is a miss; fall through to a fresh capture.
  }
  FrontCapture capture = capture_front_impl(workload_name, params, factory);
  try {
    trace::TraceStoreEntry entry;
    entry.metadata = encode_capture_metadata(capture, params, factory);
    capture.interval_profile.serialize(entry.interval_profile);
    capture.residual.serialize(entry.residual);
    store->store(key, entry);
  } catch (const CancelledError&) {
    throw;
  } catch (const std::exception&) {
    // Best-effort append: a read-only or full store directory must not
    // fail the sweep — the capture in hand is still good.
  }
  return capture;
}

cache::HierarchyProfile replay_back(const FrontCapture& capture,
                                    cache::MemoryHierarchy& back,
                                    const SamplePlan* plan,
                                    std::vector<RepEstimate>* reps) {
  HMS_FAULT_POINT("sim/replay_back");
  // Chunk granularity is the replay's cancellation point: the ambient
  // token (armed by the engine running this cell) turns a hung cell into
  // a CancelledError instead of an unbounded stall.
  CancellationToken* const token = CancellationToken::current();
  std::vector<trace::MemoryAccess> scratch;
  if (plan != nullptr && !plan->exact) {
    PlanSampler sampler(*plan);
    for (const SampleStep& step : plan->steps) {
      if (token != nullptr) token->throw_if_cancelled("sim/replay_back");
      capture.residual.decode_chunk(step.chunk, scratch);
      sampler.begin_step(step, back);
      back.access_batch(scratch);
      sampler.end_step(step, back);
    }
    if (reps != nullptr) {
      *reps = sampler.rep_estimates(capture.front_profile, back);
    }
    return cache::HierarchyProfile::combine(capture.front_profile,
                                            sampler.estimated_back(back));
  }
  const std::size_t chunks = capture.residual.chunk_count();
  for (std::size_t i = 0; i < chunks; ++i) {
    if (token != nullptr) token->throw_if_cancelled("sim/replay_back");
    capture.residual.decode_chunk(i, scratch);
    back.access_batch(scratch);
  }
  if (reps != nullptr) reps->clear();
  return cache::HierarchyProfile::combine(capture.front_profile,
                                          back.profile());
}

std::vector<BackReplayOutcome> replay_back_many(
    const FrontCapture& capture,
    std::span<cache::MemoryHierarchy* const> backs, const SamplePlan* plan) {
  std::vector<BackReplayOutcome> outcomes(backs.size());
  // Hit the replay fault site once per back, in order, before touching the
  // stream: a config-major sweep hits "sim/replay_back" once per cell, and
  // keeping the same per-cell hit sequence keeps deterministic fault
  // armings (skip_first / max_fires) meaningful across replay modes.
  CancellationToken* const token = CancellationToken::current();
  std::vector<std::size_t> live;
  live.reserve(backs.size());
  for (std::size_t b = 0; b < backs.size(); ++b) {
    try {
      HMS_FAULT_POINT("sim/replay_back");
      live.push_back(b);
    } catch (const CancelledError& e) {
      if (e.kind() == CancelKind::interrupt) {
        // Shutdown outranks the sweep: fail this and every later cell.
        for (std::size_t rest = b; rest < backs.size(); ++rest) {
          outcomes[rest].error = e.what();
        }
        return outcomes;
      }
      // A hung cell (stalled fault site) degrades alone; survivors get a
      // fresh watchdog budget.
      outcomes[b].error = e.what();
      if (token != nullptr) token->rearm();
    } catch (const std::exception& e) {
      outcomes[b].error = e.what();
    }
  }

  // A non-exact plan turns the chunk loop into a step loop: same decode
  // and feed structure, but only the plan's chunks are visited, and each
  // live back carries a PlanSampler accumulating its measured deltas.
  const bool sampled = plan != nullptr && !plan->exact;
  std::vector<std::unique_ptr<PlanSampler>> samplers(backs.size());
  if (sampled) {
    for (const std::size_t b : live) {
      samplers[b] = std::make_unique<PlanSampler>(*plan);
    }
  }

  std::vector<trace::MemoryAccess> scratch;
  const std::size_t steps =
      sampled ? plan->steps.size() : capture.residual.chunk_count();
  for (std::size_t s = 0; s < steps && !live.empty(); ++s) {
    const SampleStep* const step = sampled ? &plan->steps[s] : nullptr;
    if (token != nullptr && token->cancelled()) {
      // A chunk-boundary cancellation has no single culprit cell: the
      // whole remaining column fails (DESIGN.md §6 watchdog semantics).
      try {
        token->throw_if_cancelled("sim/replay_back_many");
      } catch (const CancelledError& e) {
        for (const std::size_t b : live) outcomes[b].error = e.what();
      }
      live.clear();
      break;
    }
    try {
      capture.residual.decode_chunk(step != nullptr ? step->chunk : s,
                                    scratch);
    } catch (const std::exception& e) {
      // The shared stream is gone; every back still in flight fails.
      for (const std::size_t b : live) outcomes[b].error = e.what();
      live.clear();
      break;
    }
    // Dropping a back mid-stream must not disturb the others: erase it from
    // the live set and keep feeding the rest.
    bool interrupted = false;
    std::string interrupt_error;
    std::erase_if(live, [&](std::size_t b) {
      if (interrupted) return false;  // mass-failed below
      try {
        if (step != nullptr) samplers[b]->begin_step(*step, *backs[b]);
        backs[b]->access_batch(scratch);
        if (step != nullptr) samplers[b]->end_step(*step, *backs[b]);
        return false;
      } catch (const CancelledError& e) {
        outcomes[b].error = e.what();
        if (e.kind() == CancelKind::interrupt) {
          interrupted = true;
          interrupt_error = e.what();
        } else if (token != nullptr) {
          token->rearm();  // the hung cell is gone; give survivors time
        }
        return true;
      } catch (const std::exception& e) {
        outcomes[b].error = e.what();
        return true;
      }
    });
    if (interrupted) {
      for (const std::size_t b : live) outcomes[b].error = interrupt_error;
      live.clear();
    }
  }

  for (const std::size_t b : live) {
    outcomes[b].ok = true;
    if (sampled) {
      outcomes[b].profile = cache::HierarchyProfile::combine(
          capture.front_profile, samplers[b]->estimated_back(*backs[b]));
      outcomes[b].reps =
          samplers[b]->rep_estimates(capture.front_profile, *backs[b]);
    } else {
      outcomes[b].profile = cache::HierarchyProfile::combine(
          capture.front_profile, backs[b]->profile());
    }
  }
  return outcomes;
}

}  // namespace hms::sim
