#include "hms/sim/simulator.hpp"

#include "hms/common/cancel.hpp"
#include "hms/common/fault.hpp"

namespace hms::sim {

cache::HierarchyProfile simulate(workloads::Workload& workload,
                                 cache::MemoryHierarchy& h) {
  workload.run(h);
  return h.profile();
}

FrontCapture capture_front(const std::string& workload_name,
                           const workloads::WorkloadParams& params,
                           const designs::DesignFactory& factory) {
  HMS_FAULT_POINT("sim/capture_front");
  FrontCapture capture;
  capture.workload_name = workload_name;
  auto workload = workloads::make_workload(workload_name, params);
  capture.info = workload->info();
  capture.footprint_bytes = workload->footprint_bytes();
  capture.ranges = workload->address_space().ranges();

  // Pre-size the residual buffer: the stream behind L3 is line-granular
  // fetches plus write-backs, bounded by roughly twice the footprint's line
  // count per sweep over the data. Reserving up front avoids the capture
  // vector's doubling reallocations; shrink_to_fit afterwards returns the
  // slack, since captures are held live for a whole design sweep.
  const auto fronts = factory.front_levels();
  if (!fronts.empty() && capture.footprint_bytes != 0) {
    const std::uint64_t line = fronts.back().cache.line_bytes;
    capture.residual.reserve(
        static_cast<std::size_t>(2 * (capture.footprint_bytes / line + 1)));
  }

  // Attach the interval profile only for the duration of the run: the
  // buffer stores a raw pointer, and the capture (profile included) is
  // moved into caches afterwards — a still-attached pointer would dangle.
  capture.residual.attach_interval_profile(&capture.interval_profile);
  auto front = factory.front(capture.residual);
  workload->run(*front);
  capture.residual.attach_interval_profile(nullptr);
  capture.front_profile = front->profile();
  capture.residual.shrink_to_fit();
  return capture;
}

cache::HierarchyProfile replay_back(const FrontCapture& capture,
                                    cache::MemoryHierarchy& back,
                                    const SamplePlan* plan,
                                    std::vector<RepEstimate>* reps) {
  HMS_FAULT_POINT("sim/replay_back");
  // Chunk granularity is the replay's cancellation point: the ambient
  // token (armed by the engine running this cell) turns a hung cell into
  // a CancelledError instead of an unbounded stall.
  CancellationToken* const token = CancellationToken::current();
  std::vector<trace::MemoryAccess> scratch;
  if (plan != nullptr && !plan->exact) {
    PlanSampler sampler(*plan);
    for (const SampleStep& step : plan->steps) {
      if (token != nullptr) token->throw_if_cancelled("sim/replay_back");
      capture.residual.decode_chunk(step.chunk, scratch);
      sampler.begin_step(step, back);
      back.access_batch(scratch);
      sampler.end_step(step, back);
    }
    if (reps != nullptr) {
      *reps = sampler.rep_estimates(capture.front_profile, back);
    }
    return cache::HierarchyProfile::combine(capture.front_profile,
                                            sampler.estimated_back(back));
  }
  const std::size_t chunks = capture.residual.chunk_count();
  for (std::size_t i = 0; i < chunks; ++i) {
    if (token != nullptr) token->throw_if_cancelled("sim/replay_back");
    capture.residual.decode_chunk(i, scratch);
    back.access_batch(scratch);
  }
  if (reps != nullptr) reps->clear();
  return cache::HierarchyProfile::combine(capture.front_profile,
                                          back.profile());
}

std::vector<BackReplayOutcome> replay_back_many(
    const FrontCapture& capture,
    std::span<cache::MemoryHierarchy* const> backs, const SamplePlan* plan) {
  std::vector<BackReplayOutcome> outcomes(backs.size());
  // Hit the replay fault site once per back, in order, before touching the
  // stream: a config-major sweep hits "sim/replay_back" once per cell, and
  // keeping the same per-cell hit sequence keeps deterministic fault
  // armings (skip_first / max_fires) meaningful across replay modes.
  CancellationToken* const token = CancellationToken::current();
  std::vector<std::size_t> live;
  live.reserve(backs.size());
  for (std::size_t b = 0; b < backs.size(); ++b) {
    try {
      HMS_FAULT_POINT("sim/replay_back");
      live.push_back(b);
    } catch (const CancelledError& e) {
      if (e.kind() == CancelKind::interrupt) {
        // Shutdown outranks the sweep: fail this and every later cell.
        for (std::size_t rest = b; rest < backs.size(); ++rest) {
          outcomes[rest].error = e.what();
        }
        return outcomes;
      }
      // A hung cell (stalled fault site) degrades alone; survivors get a
      // fresh watchdog budget.
      outcomes[b].error = e.what();
      if (token != nullptr) token->rearm();
    } catch (const std::exception& e) {
      outcomes[b].error = e.what();
    }
  }

  // A non-exact plan turns the chunk loop into a step loop: same decode
  // and feed structure, but only the plan's chunks are visited, and each
  // live back carries a PlanSampler accumulating its measured deltas.
  const bool sampled = plan != nullptr && !plan->exact;
  std::vector<std::unique_ptr<PlanSampler>> samplers(backs.size());
  if (sampled) {
    for (const std::size_t b : live) {
      samplers[b] = std::make_unique<PlanSampler>(*plan);
    }
  }

  std::vector<trace::MemoryAccess> scratch;
  const std::size_t steps =
      sampled ? plan->steps.size() : capture.residual.chunk_count();
  for (std::size_t s = 0; s < steps && !live.empty(); ++s) {
    const SampleStep* const step = sampled ? &plan->steps[s] : nullptr;
    if (token != nullptr && token->cancelled()) {
      // A chunk-boundary cancellation has no single culprit cell: the
      // whole remaining column fails (DESIGN.md §6 watchdog semantics).
      try {
        token->throw_if_cancelled("sim/replay_back_many");
      } catch (const CancelledError& e) {
        for (const std::size_t b : live) outcomes[b].error = e.what();
      }
      live.clear();
      break;
    }
    try {
      capture.residual.decode_chunk(step != nullptr ? step->chunk : s,
                                    scratch);
    } catch (const std::exception& e) {
      // The shared stream is gone; every back still in flight fails.
      for (const std::size_t b : live) outcomes[b].error = e.what();
      live.clear();
      break;
    }
    // Dropping a back mid-stream must not disturb the others: erase it from
    // the live set and keep feeding the rest.
    bool interrupted = false;
    std::string interrupt_error;
    std::erase_if(live, [&](std::size_t b) {
      if (interrupted) return false;  // mass-failed below
      try {
        if (step != nullptr) samplers[b]->begin_step(*step, *backs[b]);
        backs[b]->access_batch(scratch);
        if (step != nullptr) samplers[b]->end_step(*step, *backs[b]);
        return false;
      } catch (const CancelledError& e) {
        outcomes[b].error = e.what();
        if (e.kind() == CancelKind::interrupt) {
          interrupted = true;
          interrupt_error = e.what();
        } else if (token != nullptr) {
          token->rearm();  // the hung cell is gone; give survivors time
        }
        return true;
      } catch (const std::exception& e) {
        outcomes[b].error = e.what();
        return true;
      }
    });
    if (interrupted) {
      for (const std::size_t b : live) outcomes[b].error = interrupt_error;
      live.clear();
    }
  }

  for (const std::size_t b : live) {
    outcomes[b].ok = true;
    if (sampled) {
      outcomes[b].profile = cache::HierarchyProfile::combine(
          capture.front_profile, samplers[b]->estimated_back(*backs[b]));
      outcomes[b].reps =
          samplers[b]->rep_estimates(capture.front_profile, *backs[b]);
    } else {
      outcomes[b].profile = cache::HierarchyProfile::combine(
          capture.front_profile, backs[b]->profile());
    }
  }
  return outcomes;
}

}  // namespace hms::sim
