#include "hms/sim/heatmap.hpp"

#include "hms/common/error.hpp"
#include "hms/mem/technology.hpp"

namespace hms::sim {

HeatMapper::HeatMapper(std::vector<HeatMapInput> inputs)
    : inputs_(std::move(inputs)) {
  check(!inputs_.empty(), "HeatMapper: no inputs");
}

std::vector<double> HeatMapper::default_multipliers() {
  return {1.0, 2.0, 3.0, 5.0, 8.0, 10.0, 15.0, 20.0};
}

cache::HierarchyProfile HeatMapper::repriced(
    const cache::HierarchyProfile& profile, double read_latency_mult,
    double write_latency_mult, double read_energy_mult,
    double write_energy_mult) {
  const auto& dram =
      mem::TechnologyRegistry::table1().get(mem::Technology::DRAM);
  cache::HierarchyProfile out = profile;
  bool found = false;
  for (auto& level : out.levels) {
    if (level.is_cache) continue;
    // Hypothetical memory: DRAM scaled, non-volatile-like static profile
    // (the paper's NVM assumption: no static power).
    level.tech.read_latency = dram.read_latency * read_latency_mult;
    level.tech.write_latency = dram.write_latency * write_latency_mult;
    level.tech.read_pj_per_bit = dram.read_pj_per_bit * read_energy_mult;
    level.tech.write_pj_per_bit = dram.write_pj_per_bit * write_energy_mult;
    level.tech.non_volatile = true;
    level.tech.static_power_per_mib = Power::from_mw(0.0);
    found = true;
  }
  check(found, "HeatMapper: profile has no terminal memory level");
  return out;
}

HeatMapGrid HeatMapper::runtime_map(
    const std::vector<double>& read_multipliers,
    const std::vector<double>& write_multipliers) const {
  HeatMapGrid grid;
  grid.read_multipliers = read_multipliers;
  grid.write_multipliers = write_multipliers;
  grid.values.assign(write_multipliers.size(),
                     std::vector<double>(read_multipliers.size(), 0.0));
  for (std::size_t w = 0; w < write_multipliers.size(); ++w) {
    for (std::size_t r = 0; r < read_multipliers.size(); ++r) {
      double sum = 0.0;
      for (const auto& input : inputs_) {
        const auto p = repriced(input.profile, read_multipliers[r],
                                write_multipliers[w], 1.0, 1.0);
        const auto report =
            model::evaluate("heatmap", input.workload, p, input.anchor);
        sum += report.runtime / input.base.runtime;
      }
      grid.values[w][r] = sum / static_cast<double>(inputs_.size());
    }
  }
  return grid;
}

HeatMapGrid HeatMapper::energy_map(
    const std::vector<double>& read_multipliers,
    const std::vector<double>& write_multipliers) const {
  HeatMapGrid grid;
  grid.read_multipliers = read_multipliers;
  grid.write_multipliers = write_multipliers;
  grid.values.assign(write_multipliers.size(),
                     std::vector<double>(read_multipliers.size(), 0.0));
  for (std::size_t w = 0; w < write_multipliers.size(); ++w) {
    for (std::size_t r = 0; r < read_multipliers.size(); ++r) {
      double sum = 0.0;
      for (const auto& input : inputs_) {
        // Latency stays at DRAM parity; only energy-per-bit scales.
        const auto p = repriced(input.profile, 1.0, 1.0,
                                read_multipliers[r], write_multipliers[w]);
        const auto report =
            model::evaluate("heatmap", input.workload, p, input.anchor);
        sum += report.total_energy() / input.base.total_energy();
      }
      grid.values[w][r] = sum / static_cast<double>(inputs_.size());
    }
  }
  return grid;
}

}  // namespace hms::sim
