// Sweep checkpointing: durable per-config results so an interrupted figure
// sweep resumes instead of re-simulating.
//
// Format ("HMSK" v1, mirroring the trace_io varint/magic style): header
// {magic, u32 version, u64 experiment hash}, then one length-prefixed record
// per completed SuiteResult:
//
//   varint payload_len | payload:
//     str config_name | u8 partial | 5 x f64 (LE bit pattern) suite means |
//     varint n_failures x { str workload, str error } |
//     varint n_workloads x { str workload, str design, 5 x f64 normalized }
//
// (str = varint length + bytes.) Records are appended and flushed one at a
// time, so a killed run leaves at most one truncated trailing record; the
// loader stops at the first short or malformed record and discards it.
// Detailed per-workload DesignReports (absolute times/energies) are NOT
// persisted — a restored SuiteResult carries everything the figure layer
// uses (suite means + per-workload normalized values).
//
// The header hash binds a checkpoint to one (ExperimentConfig, sweep)
// pair: opening a file whose hash differs resets it, so stale results can
// never leak into a differently-parameterized rerun.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <string>
#include <string_view>

#include "hms/sim/experiment.hpp"

namespace hms::sim {

/// FNV-1a over every result-affecting ExperimentConfig field plus the
/// sweep label (e.g. "nmm:PCM"). Execution-only knobs — threads,
/// max_retries, checkpoint_path — are deliberately excluded: they change
/// how a sweep runs, not what it computes.
[[nodiscard]] std::uint64_t experiment_hash(const ExperimentConfig& config,
                                            std::string_view sweep_label);

/// See file comment. Construction loads (or resets) the file and leaves it
/// open for appending. Throws hms::IoError when the path cannot be opened.
class SweepCheckpoint {
 public:
  SweepCheckpoint(std::string path, std::uint64_t hash);

  /// The result previously checkpointed for `config_name`, or nullptr.
  [[nodiscard]] const SuiteResult* find(const std::string& config_name) const;
  [[nodiscard]] std::size_t size() const noexcept { return completed_.size(); }

  /// Durably appends one result (record + flush). Call only with complete
  /// (non-partial) results; partial ones should be re-attempted on resume.
  void append(const SuiteResult& result);

 private:
  std::string path_;
  std::uint64_t hash_;
  std::map<std::string, SuiteResult> completed_;
  std::ofstream out_;
};

}  // namespace hms::sim
