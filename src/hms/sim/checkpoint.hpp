// Sweep checkpointing: durable per-config results so an interrupted figure
// sweep resumes instead of re-simulating.
//
// Format ("HMSK" v3, mirroring the trace_io varint/magic style): header
// {magic, u32 version, u64 experiment hash}, then one integrity-checked,
// length-prefixed record per completed SuiteResult:
//
//   varint payload_len | u32 CRC32C(payload) (LE) | payload:
//     str config_name | u8 partial | 5 x f64 (LE bit pattern) suite means |
//     u8 sampled | 5 x f64 suite spread |
//     varint n_failures x { str workload, str error } |
//     varint n_workloads x { str workload, str design, 5 x f64 normalized,
//                            u8 sampled, 5 x f64 spread }
//
// (str = varint length + bytes.) Records are appended one at a time, each
// append followed by fsync, so a kill at any instant leaves at most one
// torn trailing record. On open, the loader verifies every record's CRC
// and structure; the first bad record — torn tail or bit-rot anywhere —
// stops the scan, and the file is truncated back to the last good record
// so the sweep resumes from a consistent prefix. Version-1 files (no
// per-record CRC) and version-2 files (no sampling fields — those results
// were exact, so they load with sampled = false and zero spread) still
// load; both are upgraded in place to v3 on open.
// Detailed per-workload DesignReports (absolute times/energies) are NOT
// persisted — a restored SuiteResult carries everything the figure layer
// uses (suite means + per-workload normalized values).
//
// The header hash binds a checkpoint to one (ExperimentConfig, sweep)
// pair: opening a file whose hash differs resets it, so stale results can
// never leak into a differently-parameterized rerun.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "hms/sim/experiment.hpp"

namespace hms::sim {

/// FNV-1a over every result-affecting ExperimentConfig field plus the
/// sweep label (e.g. "nmm:PCM"). Execution-only knobs — threads,
/// max_retries, cell_timeout_ms, retry_backoff_ms, checkpoint_path,
/// replay_mode — are deliberately excluded: they change how a sweep runs,
/// not what it computes. SimPoint sampling (with sample_k/warmup_chunks)
/// IS mixed in — estimates must not resume from exact results or vice
/// versa — while Full mode mixes nothing, so pre-sampling checkpoints
/// stay resumable.
[[nodiscard]] std::uint64_t experiment_hash(const ExperimentConfig& config,
                                            std::string_view sweep_label);

/// See file comment. Construction creates missing parent directories,
/// loads (or resets) the file, repairs corruption by truncating to the
/// last CRC-valid record, and leaves a file descriptor open for durable
/// appending. Throws hms::IoError (with the path and errno context) when
/// the path cannot be created or opened.
class SweepCheckpoint {
 public:
  SweepCheckpoint(std::string path, std::uint64_t hash);
  ~SweepCheckpoint();
  SweepCheckpoint(const SweepCheckpoint&) = delete;
  SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;

  /// The result previously checkpointed for `config_name`, or nullptr.
  [[nodiscard]] const SuiteResult* find(const std::string& config_name) const;
  [[nodiscard]] std::size_t size() const noexcept { return completed_.size(); }

  /// Durably appends one result: length + CRC32C + payload, then fsync, so
  /// the record survives a kill the moment append returns. Call only with
  /// complete (non-partial) results; partial ones should be re-attempted
  /// on resume.
  void append(const SuiteResult& result);

 private:
  std::string path_;
  std::uint64_t hash_;
  std::map<std::string, SuiteResult> completed_;
  int fd_ = -1;
};

}  // namespace hms::sim
