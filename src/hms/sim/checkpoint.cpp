#include "hms/sim/checkpoint.hpp"

#include <array>
#include <cstring>

#include "hms/common/error.hpp"

namespace hms::sim {

namespace {

constexpr std::array<char, 4> kMagic = {'H', 'M', 'S', 'K'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes =
    kMagic.size() + sizeof(std::uint32_t) + sizeof(std::uint64_t);

// -- in-memory varint encoding (trace_io style, buffer-based so a record is
// -- assembled fully before the single durable append) ----------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

/// Cursor-based readers: all return false on truncation or malformed data
/// so the loader can stop at (and discard) a partial trailing record.
bool get_varint(std::string_view data, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size() || shift >= 64) return false;
    const auto c = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
    shift += 7;
  }
}

bool get_string(std::string_view data, std::size_t& pos, std::string& s) {
  std::uint64_t len = 0;
  if (!get_varint(data, pos, len)) return false;
  if (len > data.size() - pos) return false;
  s.assign(data.substr(pos, len));
  pos += len;
  return true;
}

bool get_f64(std::string_view data, std::size_t& pos, double& v) {
  if (data.size() - pos < 8) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data[pos + static_cast<std::size_t>(
                                                          i)]))
            << (8 * i);
  }
  pos += 8;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

std::string encode(const SuiteResult& r) {
  std::string out;
  put_string(out, r.config_name);
  out.push_back(r.partial ? '\1' : '\0');
  put_f64(out, r.runtime);
  put_f64(out, r.dynamic);
  put_f64(out, r.leakage);
  put_f64(out, r.total_energy);
  put_f64(out, r.edp);
  put_varint(out, r.failures.size());
  for (const auto& f : r.failures) {
    put_string(out, f.workload);
    put_string(out, f.error);
  }
  put_varint(out, r.per_workload.size());
  for (const auto& wr : r.per_workload) {
    put_string(out, wr.normalized.workload);
    put_string(out, wr.normalized.design);
    put_f64(out, wr.normalized.runtime);
    put_f64(out, wr.normalized.dynamic);
    put_f64(out, wr.normalized.leakage);
    put_f64(out, wr.normalized.total_energy);
    put_f64(out, wr.normalized.edp);
  }
  return out;
}

bool decode(std::string_view payload, SuiteResult& r) {
  std::size_t pos = 0;
  if (!get_string(payload, pos, r.config_name)) return false;
  if (pos >= payload.size()) return false;
  r.partial = payload[pos++] != '\0';
  if (!get_f64(payload, pos, r.runtime)) return false;
  if (!get_f64(payload, pos, r.dynamic)) return false;
  if (!get_f64(payload, pos, r.leakage)) return false;
  if (!get_f64(payload, pos, r.total_energy)) return false;
  if (!get_f64(payload, pos, r.edp)) return false;
  std::uint64_t n = 0;
  if (!get_varint(payload, pos, n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    SuiteFailure f;
    if (!get_string(payload, pos, f.workload)) return false;
    if (!get_string(payload, pos, f.error)) return false;
    r.failures.push_back(std::move(f));
  }
  if (!get_varint(payload, pos, n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    WorkloadResult wr;
    if (!get_string(payload, pos, wr.normalized.workload)) return false;
    if (!get_string(payload, pos, wr.normalized.design)) return false;
    if (!get_f64(payload, pos, wr.normalized.runtime)) return false;
    if (!get_f64(payload, pos, wr.normalized.dynamic)) return false;
    if (!get_f64(payload, pos, wr.normalized.leakage)) return false;
    if (!get_f64(payload, pos, wr.normalized.total_energy)) return false;
    if (!get_f64(payload, pos, wr.normalized.edp)) return false;
    wr.report.workload = wr.normalized.workload;
    wr.report.design = wr.normalized.design;
    r.per_workload.push_back(std::move(wr));
  }
  return pos == payload.size();
}

// -- hashing ----------------------------------------------------------------

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
  }
  void mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void byte(unsigned char c) {
    hash_ ^= c;
    hash_ *= 0x100000001b3ull;
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::uint64_t experiment_hash(const ExperimentConfig& config,
                              std::string_view sweep_label) {
  Fnv1a h;
  h.mix(sweep_label);
  h.mix(config.scale_divisor);
  h.mix(config.footprint_divisor);
  h.mix(config.seed);
  h.mix(static_cast<std::uint64_t>(config.iterations));
  h.mix(static_cast<std::uint64_t>(config.suite.size()));
  for (const auto& w : config.suite) h.mix(w);
  const auto& opts = config.design_options;
  h.mix(static_cast<std::uint64_t>(opts.l4_policy));
  h.mix(static_cast<std::uint64_t>(opts.l4_prefetch.kind));
  h.mix(static_cast<std::uint64_t>(opts.l4_prefetch.degree));
  h.mix(opts.sector_bytes);
  h.mix(static_cast<std::uint64_t>(opts.nvm_wear_leveling));
  h.mix(static_cast<std::uint64_t>(opts.nvm_track_endurance));
  h.mix(opts.nvm_gap_write_interval);
  return h.value();
}

SweepCheckpoint::SweepCheckpoint(std::string path, std::uint64_t hash)
    : path_(std::move(path)), hash_(hash) {
  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      data.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }

  bool valid = data.size() >= kHeaderBytes &&
               std::memcmp(data.data(), kMagic.data(), kMagic.size()) == 0;
  if (valid) {
    std::uint32_t version = 0;
    std::memcpy(&version, data.data() + kMagic.size(), sizeof(version));
    std::uint64_t file_hash = 0;
    std::memcpy(&file_hash, data.data() + kMagic.size() + sizeof(version),
                sizeof(file_hash));
    valid = version == kVersion && file_hash == hash_;
  }

  if (valid) {
    // Replay records; stop silently at the first truncated/malformed one
    // (at most the final record, if the writing process was killed
    // mid-append).
    const std::string_view view = data;
    std::size_t pos = kHeaderBytes;
    while (pos < view.size()) {
      std::uint64_t len = 0;
      if (!get_varint(view, pos, len)) break;
      if (len > view.size() - pos) break;
      SuiteResult r;
      if (!decode(view.substr(pos, len), r)) break;
      pos += len;
      completed_[r.config_name] = std::move(r);
    }
    out_.open(path_, std::ios::binary | std::ios::app);
  } else {
    // Missing, foreign, or stale file: start a fresh checkpoint.
    out_.open(path_, std::ios::binary | std::ios::trunc);
    if (out_) {
      out_.write(kMagic.data(), kMagic.size());
      std::uint32_t version = kVersion;
      out_.write(reinterpret_cast<const char*>(&version), sizeof(version));
      out_.write(reinterpret_cast<const char*>(&hash_), sizeof(hash_));
      out_.flush();
    }
  }
  if (!out_) {
    throw IoError("checkpoint: cannot open for append: " + path_);
  }
}

const SuiteResult* SweepCheckpoint::find(
    const std::string& config_name) const {
  const auto it = completed_.find(config_name);
  return it != completed_.end() ? &it->second : nullptr;
}

void SweepCheckpoint::append(const SuiteResult& result) {
  const std::string payload = encode(result);
  std::string record;
  put_varint(record, payload.size());
  record += payload;
  out_.write(record.data(),
             static_cast<std::streamsize>(record.size()));
  out_.flush();
  if (!out_) throw IoError("checkpoint: write failed: " + path_);
  completed_[result.config_name] = result;
}

}  // namespace hms::sim
