#include "hms/sim/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <utility>
#include <vector>

#include "hms/common/crc32c.hpp"
#include "hms/common/error.hpp"

namespace hms::sim {

namespace {

constexpr std::array<char, 4> kMagic = {'H', 'M', 'S', 'K'};
constexpr std::uint32_t kVersionLegacy = 1;  ///< no per-record CRC
constexpr std::uint32_t kVersionCrc = 2;     ///< CRC32C per record
constexpr std::uint32_t kVersion = 3;        ///< + sampled flag & spreads
constexpr std::size_t kHeaderBytes =
    kMagic.size() + sizeof(std::uint32_t) + sizeof(std::uint64_t);

/// IoError with path + errno context (satellite requirement: a failing
/// checkpoint names what it was doing, where, and why the OS said no).
[[noreturn]] void throw_io(const std::string& doing, const std::string& path) {
  const int err = errno;
  throw IoError("checkpoint: " + doing + ": " + path + ": " +
                std::strerror(err) + " (errno " + std::to_string(err) + ")");
}

// -- in-memory varint encoding (trace_io style, buffer-based so a record is
// -- assembled fully before the single durable append) ----------------------

void put_varint(std::string& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

void put_string(std::string& out, std::string_view s) {
  put_varint(out, s.size());
  out.append(s);
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

/// Cursor-based readers: all return false on truncation or malformed data
/// so the loader can stop at (and discard) a partial trailing record.
bool get_varint(std::string_view data, std::size_t& pos, std::uint64_t& v) {
  v = 0;
  int shift = 0;
  while (true) {
    if (pos >= data.size() || shift >= 64) return false;
    const auto c = static_cast<unsigned char>(data[pos++]);
    v |= static_cast<std::uint64_t>(c & 0x7f) << shift;
    if ((c & 0x80) == 0) return true;
    shift += 7;
  }
}

bool get_string(std::string_view data, std::size_t& pos, std::string& s) {
  std::uint64_t len = 0;
  if (!get_varint(data, pos, len)) return false;
  if (len > data.size() - pos) return false;
  s.assign(data.substr(pos, len));
  pos += len;
  return true;
}

bool get_u32le(std::string_view data, std::size_t& pos, std::uint32_t& v) {
  if (data.size() - pos < 4) return false;
  v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data[pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  pos += 4;
  return true;
}

bool get_f64(std::string_view data, std::size_t& pos, double& v) {
  if (data.size() - pos < 8) return false;
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i) {
    bits |= static_cast<std::uint64_t>(
                static_cast<unsigned char>(data[pos + static_cast<std::size_t>(
                                                          i)]))
            << (8 * i);
  }
  pos += 8;
  std::memcpy(&v, &bits, sizeof(v));
  return true;
}

void put_spread(std::string& out, const MetricSpread& s) {
  put_f64(out, s.runtime);
  put_f64(out, s.dynamic);
  put_f64(out, s.leakage);
  put_f64(out, s.total_energy);
  put_f64(out, s.edp);
}

bool get_spread(std::string_view data, std::size_t& pos, MetricSpread& s) {
  return get_f64(data, pos, s.runtime) && get_f64(data, pos, s.dynamic) &&
         get_f64(data, pos, s.leakage) && get_f64(data, pos, s.total_energy) &&
         get_f64(data, pos, s.edp);
}

std::string encode(const SuiteResult& r) {
  std::string out;
  put_string(out, r.config_name);
  out.push_back(r.partial ? '\1' : '\0');
  put_f64(out, r.runtime);
  put_f64(out, r.dynamic);
  put_f64(out, r.leakage);
  put_f64(out, r.total_energy);
  put_f64(out, r.edp);
  out.push_back(r.sampled ? '\1' : '\0');
  put_spread(out, r.spread);
  put_varint(out, r.failures.size());
  for (const auto& f : r.failures) {
    put_string(out, f.workload);
    put_string(out, f.error);
  }
  put_varint(out, r.per_workload.size());
  for (const auto& wr : r.per_workload) {
    put_string(out, wr.normalized.workload);
    put_string(out, wr.normalized.design);
    put_f64(out, wr.normalized.runtime);
    put_f64(out, wr.normalized.dynamic);
    put_f64(out, wr.normalized.leakage);
    put_f64(out, wr.normalized.total_energy);
    put_f64(out, wr.normalized.edp);
    out.push_back(wr.sampled ? '\1' : '\0');
    put_spread(out, wr.spread);
  }
  return out;
}

/// Decodes a payload written by the given format version. Pre-v3 records
/// carry no sampling fields; they load as exact results (sampled = false,
/// zero spread), which is what they were.
bool decode(std::string_view payload, std::uint32_t version, SuiteResult& r) {
  const bool has_sampling = version >= 3;
  std::size_t pos = 0;
  if (!get_string(payload, pos, r.config_name)) return false;
  if (pos >= payload.size()) return false;
  r.partial = payload[pos++] != '\0';
  if (!get_f64(payload, pos, r.runtime)) return false;
  if (!get_f64(payload, pos, r.dynamic)) return false;
  if (!get_f64(payload, pos, r.leakage)) return false;
  if (!get_f64(payload, pos, r.total_energy)) return false;
  if (!get_f64(payload, pos, r.edp)) return false;
  if (has_sampling) {
    if (pos >= payload.size()) return false;
    r.sampled = payload[pos++] != '\0';
    if (!get_spread(payload, pos, r.spread)) return false;
  }
  std::uint64_t n = 0;
  if (!get_varint(payload, pos, n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    SuiteFailure f;
    if (!get_string(payload, pos, f.workload)) return false;
    if (!get_string(payload, pos, f.error)) return false;
    r.failures.push_back(std::move(f));
  }
  if (!get_varint(payload, pos, n)) return false;
  for (std::uint64_t i = 0; i < n; ++i) {
    WorkloadResult wr;
    if (!get_string(payload, pos, wr.normalized.workload)) return false;
    if (!get_string(payload, pos, wr.normalized.design)) return false;
    if (!get_f64(payload, pos, wr.normalized.runtime)) return false;
    if (!get_f64(payload, pos, wr.normalized.dynamic)) return false;
    if (!get_f64(payload, pos, wr.normalized.leakage)) return false;
    if (!get_f64(payload, pos, wr.normalized.total_energy)) return false;
    if (!get_f64(payload, pos, wr.normalized.edp)) return false;
    if (has_sampling) {
      if (pos >= payload.size()) return false;
      wr.sampled = payload[pos++] != '\0';
      if (!get_spread(payload, pos, wr.spread)) return false;
    }
    wr.report.workload = wr.normalized.workload;
    wr.report.design = wr.normalized.design;
    r.per_workload.push_back(std::move(wr));
  }
  return pos == payload.size();
}

/// One current-format record: length, little-endian CRC32C of the payload,
/// payload.
std::string encode_record(const SuiteResult& r) {
  const std::string payload = encode(r);
  std::string record;
  put_varint(record, payload.size());
  put_u32le(record, crc32c(payload.data(), payload.size()));
  record += payload;
  return record;
}

std::string header_bytes(std::uint64_t hash) {
  std::string out(kMagic.data(), kMagic.size());
  put_u32le(out, kVersion);
  std::uint64_t h = hash;
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((h >> (8 * i)) & 0xff));
  }
  return out;
}

int open_checkpoint_fd(const std::string& path, int extra_flags) {
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CLOEXEC | extra_flags, 0644);
  if (fd < 0) throw_io("cannot open for append", path);
  return fd;
}

void write_all(int fd, const char* p, std::size_t n, const std::string& path) {
  while (n > 0) {
    const ::ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_io("write failed", path);
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
}

void sync_fd(int fd, const std::string& path) {
  while (::fsync(fd) != 0) {
    if (errno != EINTR) throw_io("fsync failed", path);
  }
}

// -- hashing ----------------------------------------------------------------

class Fnv1a {
 public:
  void mix(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      byte(static_cast<unsigned char>((v >> (8 * i)) & 0xff));
    }
  }
  void mix(std::string_view s) {
    mix(static_cast<std::uint64_t>(s.size()));
    for (const char c : s) byte(static_cast<unsigned char>(c));
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return hash_; }

 private:
  void byte(unsigned char c) {
    hash_ ^= c;
    hash_ *= 0x100000001b3ull;
  }
  std::uint64_t hash_ = 0xcbf29ce484222325ull;
};

}  // namespace

std::uint64_t experiment_hash(const ExperimentConfig& config,
                              std::string_view sweep_label) {
  Fnv1a h;
  h.mix(sweep_label);
  h.mix(config.scale_divisor);
  h.mix(config.footprint_divisor);
  h.mix(config.seed);
  h.mix(static_cast<std::uint64_t>(config.iterations));
  h.mix(static_cast<std::uint64_t>(config.suite.size()));
  for (const auto& w : config.suite) h.mix(w);
  const auto& opts = config.design_options;
  h.mix(static_cast<std::uint64_t>(opts.l4_policy));
  h.mix(static_cast<std::uint64_t>(opts.l4_prefetch.kind));
  h.mix(static_cast<std::uint64_t>(opts.l4_prefetch.degree));
  h.mix(opts.sector_bytes);
  h.mix(static_cast<std::uint64_t>(opts.nvm_wear_leveling));
  h.mix(static_cast<std::uint64_t>(opts.nvm_track_endurance));
  h.mix(opts.nvm_gap_write_interval);
  // Sampling changes what a sweep computes (estimates vs exact counters),
  // so SimPoint — with the knobs that shape its plans — is result-affecting.
  // Full mode mixes nothing, keeping pre-sampling checkpoint hashes valid.
  if (config.sampling == SamplingMode::SimPoint) {
    h.mix(std::string_view("sampling:simpoint"));
    h.mix(static_cast<std::uint64_t>(config.sample_k));
    h.mix(static_cast<std::uint64_t>(config.warmup_chunks));
  }
  return h.value();
}

SweepCheckpoint::SweepCheckpoint(std::string path, std::uint64_t hash)
    : path_(std::move(path)), hash_(hash) {
  namespace fs = std::filesystem;

  // Unattended sweeps point checkpoints into per-run directories that may
  // not exist yet; create the chain rather than failing the whole sweep.
  const fs::path parent = fs::path(path_).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    fs::create_directories(parent, ec);
    if (ec) {
      throw IoError("checkpoint: cannot create parent directory " +
                    parent.string() + " for " + path_ + ": " + ec.message());
    }
  }

  std::string data;
  {
    std::ifstream in(path_, std::ios::binary);
    if (in) {
      data.assign(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
    }
  }

  std::uint32_t version = 0;
  bool valid = data.size() >= kHeaderBytes &&
               std::memcmp(data.data(), kMagic.data(), kMagic.size()) == 0;
  if (valid) {
    std::memcpy(&version, data.data() + kMagic.size(), sizeof(version));
    std::uint64_t file_hash = 0;
    std::memcpy(&file_hash, data.data() + kMagic.size() + sizeof(version),
                sizeof(file_hash));
    valid = (version == kVersion || version == kVersionCrc ||
             version == kVersionLegacy) &&
            file_hash == hash_;
  }

  if (!valid) {
    // Missing, foreign, or stale file: start a fresh current-version file.
    fd_ = open_checkpoint_fd(path_, O_CREAT | O_TRUNC);
    const std::string header = header_bytes(hash_);
    write_all(fd_, header.data(), header.size(), path_);
    sync_fd(fd_, path_);
    return;
  }

  // Replay records in file order, stopping at the first record that is
  // torn, structurally malformed, or (v2+) fails its CRC — everything from
  // that point on is untrusted and will be recomputed.
  const std::string_view view = data;
  std::size_t pos = kHeaderBytes;
  std::size_t good_end = kHeaderBytes;
  std::vector<SuiteResult> in_order;
  while (pos < view.size()) {
    std::uint64_t len = 0;
    if (!get_varint(view, pos, len)) break;
    if (version >= kVersionCrc) {
      std::uint32_t stored_crc = 0;
      if (!get_u32le(view, pos, stored_crc)) break;
      if (len > view.size() - pos) break;
      const std::string_view payload = view.substr(pos, len);
      if (crc32c(payload.data(), payload.size()) != stored_crc) break;
      SuiteResult r;
      if (!decode(payload, version, r)) break;
      pos += len;
      good_end = pos;
      in_order.push_back(std::move(r));
    } else {
      if (len > view.size() - pos) break;
      SuiteResult r;
      if (!decode(view.substr(pos, len), version, r)) break;
      pos += len;
      good_end = pos;
      in_order.push_back(std::move(r));
    }
  }
  for (auto& r : in_order) completed_[r.config_name] = std::move(r);

  if (version < kVersion) {
    // Upgrade in place: rewrite the surviving records in the current
    // format (v1 gains CRCs, v2 gains the zeroed sampling fields) so the
    // file is uniformly v3 (no mixed-version parsing on the next open).
    fd_ = open_checkpoint_fd(path_, O_CREAT | O_TRUNC);
    std::string out = header_bytes(hash_);
    for (const auto& [name, r] : completed_) out += encode_record(r);
    write_all(fd_, out.data(), out.size(), path_);
    sync_fd(fd_, path_);
    return;
  }

  if (good_end < data.size()) {
    // Drop the torn/corrupt suffix so appends extend a consistent prefix.
    std::error_code ec;
    fs::resize_file(path_, good_end, ec);
    if (ec) {
      throw IoError("checkpoint: cannot truncate corrupt suffix of " + path_ +
                    " to " + std::to_string(good_end) + " bytes: " +
                    ec.message());
    }
  }
  fd_ = open_checkpoint_fd(path_, O_APPEND);
}

SweepCheckpoint::~SweepCheckpoint() {
  if (fd_ >= 0) ::close(fd_);
}

const SuiteResult* SweepCheckpoint::find(
    const std::string& config_name) const {
  const auto it = completed_.find(config_name);
  return it != completed_.end() ? &it->second : nullptr;
}

void SweepCheckpoint::append(const SuiteResult& result) {
  const std::string record = encode_record(result);
  write_all(fd_, record.data(), record.size(), path_);
  sync_fd(fd_, path_);
  completed_[result.config_name] = result;
}

}  // namespace hms::sim
