// A terminal main-memory device: counts reads/writes and bytes moved, and
// (for NVM) threads writes through endurance tracking and optional Start-Gap
// wear levelling. The cache hierarchy's last level drives one or two (NDM)
// of these.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "hms/common/types.hpp"
#include "hms/common/units.hpp"
#include "hms/mem/technology.hpp"
#include "hms/mem/wear.hpp"

namespace hms::mem {

/// Configuration for a main-memory device.
struct MemoryDeviceConfig {
  std::string name = "mem";
  TechnologyParams technology;
  std::uint64_t capacity_bytes = 0;
  /// Capacity for static-power modeling; 0 = capacity_bytes. See
  /// cache::CacheConfig::modeled_capacity_bytes.
  std::uint64_t modeled_capacity_bytes = 0;
  /// Wear-tracking granularity; also the Start-Gap line size.
  std::uint64_t line_bytes = 256;
  /// Enable per-line endurance tracking (costs memory proportional to
  /// capacity / line_bytes).
  bool track_endurance = false;
  /// Enable Start-Gap wear levelling (implies endurance tracking).
  bool wear_leveling = false;
  /// Start-Gap gap-move interval (writes between gap movements).
  std::uint64_t gap_write_interval = 100;
};

/// Aggregate access counters for a device (the model's Eq. 2/3 inputs).
struct DeviceStats {
  Count reads = 0;
  Count writes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t write_bytes = 0;
  /// Extra writes issued by the wear leveller's line migrations.
  Count migration_writes = 0;

  [[nodiscard]] Count total() const noexcept { return reads + writes; }
};

/// See file comment.
class MemoryDevice {
 public:
  explicit MemoryDevice(MemoryDeviceConfig config);

  /// Records a read of `bytes` at `address`.
  void read(Address address, std::uint64_t bytes);

  /// Records a write of `bytes` at `address`; updates wear state.
  void write(Address address, std::uint64_t bytes);

  [[nodiscard]] const MemoryDeviceConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const DeviceStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const TechnologyParams& technology() const noexcept {
    return config_.technology;
  }

  /// Endurance metrics; only present when tracking was enabled.
  [[nodiscard]] const EnduranceTracker* endurance() const noexcept {
    return endurance_ ? &*endurance_ : nullptr;
  }
  [[nodiscard]] const StartGapWearLeveler* wear_leveler() const noexcept {
    return leveler_ ? &*leveler_ : nullptr;
  }

  void reset_stats() noexcept { stats_ = DeviceStats{}; }

 private:
  [[nodiscard]] std::uint64_t line_of(Address address) const;

  MemoryDeviceConfig config_;
  DeviceStats stats_;
  std::optional<EnduranceTracker> endurance_;
  std::optional<StartGapWearLeveler> leveler_;
};

}  // namespace hms::mem
