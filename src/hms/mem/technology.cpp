#include "hms/mem/technology.hpp"

#include <array>

#include "hms/common/error.hpp"
#include "hms/common/string_util.hpp"

namespace hms::mem {

std::string_view to_string(Technology t) {
  switch (t) {
    case Technology::SRAM:
      return "SRAM";
    case Technology::DRAM:
      return "DRAM";
    case Technology::PCM:
      return "PCM";
    case Technology::STTRAM:
      return "STTRAM";
    case Technology::FeRAM:
      return "FeRAM";
    case Technology::eDRAM:
      return "eDRAM";
    case Technology::HMC:
      return "HMC";
  }
  return "unknown";
}

Technology technology_from_string(std::string_view name) {
  for (Technology t :
       {Technology::SRAM, Technology::DRAM, Technology::PCM,
        Technology::STTRAM, Technology::FeRAM, Technology::eDRAM,
        Technology::HMC}) {
    if (iequals(name, to_string(t))) return t;
  }
  if (iequals(name, "stt-ram") || iequals(name, "stt")) {
    return Technology::STTRAM;
  }
  if (iequals(name, "ram")) return Technology::DRAM;  // Table 1 spelling
  throw Error("unknown memory technology: " + std::string(name));
}

namespace {

// Static/refresh power densities (mW per MiB). See the TechnologyParams doc
// comment: Table 1's static column is unreadable in the source text, so
// these are reconstructed at the magnitudes the paper's narrative requires:
//  - DRAM background: Micron DDR3 power-calculator territory (~1.6 W of
//    idle/standby power for 4 GiB => 0.4 mW/MiB). The base design sizes
//    DRAM to the footprint, so multi-GiB footprints carry ~0.3-1.6 W of
//    static power — the lever behind the paper's NMM/NDM static-energy
//    savings (the text attributes Velvet/Hash/AMG/Graph500's NDM savings
//    to their "significant static energy").
//  - eDRAM refresh: an order of magnitude denser than DRAM refresh per bit
//    (higher-leakage fast cells, on-die).
//  - HMC: stacked-DRAM background per prototype reports.
//  - NVM rows: zero, per the paper ("we assume that the NVM memory
//    technologies do not have any static power").
constexpr double kDramStaticMwPerMib = 0.40;
constexpr double kEdramStaticMwPerMib = 1.20;
constexpr double kHmcStaticMwPerMib = 1.60;

// PCM endurance ~1e8 writes (ITRS 2013); STT-RAM and FeRAM effectively
// unlimited (>1e15) for the simulated horizons; modeled as 0 = unlimited.
constexpr std::uint64_t kPcmEndurance = 100'000'000;

TechnologyParams make(Technology t, double read_ns, double write_ns,
                      double read_pj, double write_pj, double static_mw_mib,
                      bool nv, std::uint64_t endurance) {
  TechnologyParams p;
  p.technology = t;
  p.read_latency = Time::from_ns(read_ns);
  p.write_latency = Time::from_ns(write_ns);
  p.read_pj_per_bit = read_pj;
  p.write_pj_per_bit = write_pj;
  p.static_power_per_mib = Power::from_mw(static_mw_mib);
  p.non_volatile = nv;
  p.endurance_writes = endurance;
  return p;
}

}  // namespace

const TechnologyRegistry& TechnologyRegistry::table1() {
  static const TechnologyRegistry registry = [] {
    TechnologyRegistry r;
    // Table 1 of the paper: read/write delay (ns), read/write energy
    // (pJ/bit).
    r.params_ = {
        make(Technology::DRAM, 10.0, 10.0, 10.0, 10.0, kDramStaticMwPerMib,
             false, 0),
        make(Technology::PCM, 21.0, 100.0, 12.4, 210.3, 0.0, true,
             kPcmEndurance),
        make(Technology::STTRAM, 35.0, 35.0, 58.5, 67.7, 0.0, true, 0),
        make(Technology::FeRAM, 40.0, 65.0, 12.4, 210.0, 0.0, true, 0),
        make(Technology::eDRAM, 4.4, 4.4, 3.11, 3.09, kEdramStaticMwPerMib,
             false, 0),
        make(Technology::HMC, 0.18, 0.18, 0.48, 10.48, kHmcStaticMwPerMib,
             false, 0),
    };
    return r;
  }();
  return registry;
}

const TechnologyParams& TechnologyRegistry::get(Technology t) const {
  for (const auto& p : params_) {
    if (p.technology == t) return p;
  }
  throw Error("technology not in registry: " + std::string(to_string(t)));
}

const TechnologyParams& TechnologyRegistry::get(std::string_view name) const {
  return get(technology_from_string(name));
}

TechnologyRegistry TechnologyRegistry::with(
    const TechnologyParams& override_params) const {
  TechnologyRegistry copy = *this;
  for (auto& p : copy.params_) {
    if (p.technology == override_params.technology) {
      p = override_params;
      return copy;
    }
  }
  copy.params_.push_back(override_params);
  return copy;
}

TechnologyParams CacheTechnology::as_params() const {
  TechnologyParams p;
  p.technology = Technology::SRAM;
  p.read_latency = access_latency;
  p.write_latency = access_latency;
  p.read_pj_per_bit = pj_per_bit;
  p.write_pj_per_bit = pj_per_bit;
  p.static_power_per_mib = static_power_per_mib;
  p.non_volatile = false;
  p.endurance_writes = 0;
  return p;
}

const CacheTechnology& sram_level(int level) {
  // CACTI-6.0-style values at 32 nm for the Sandy Bridge reference caches:
  //   L1 32 KB 8-way:  ~0.5 ns, ~0.2 pJ/bit
  //   L2 256 KB 8-way: ~2.0 ns, ~0.5 pJ/bit
  //   L3 20 MB 20-way: ~6.0 ns, ~1.5 pJ/bit
  // Leakage 12 mW/MiB puts the 20 MB L3 at ~240 mW — below the multi-GiB
  // DRAM background, matching the paper's static-energy narrative.
  static const std::array<CacheTechnology, 3> levels = {{
      {Time::from_ns(0.5), 0.2, Power::from_mw(12.0)},
      {Time::from_ns(2.0), 0.5, Power::from_mw(12.0)},
      {Time::from_ns(6.0), 1.5, Power::from_mw(12.0)},
  }};
  check(level >= 1 && level <= 3, "sram_level: level must be 1..3");
  return levels[static_cast<std::size_t>(level - 1)];
}

}  // namespace hms::mem
