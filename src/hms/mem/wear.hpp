// NVM endurance tracking and Start-Gap wear levelling.
//
// The paper notes (Section II.A) that PCM endurance is limited and that wear
// levelling "does incur some overhead that adds variability in performance".
// This module provides the substrate to quantify that remark: a per-line
// write-count tracker and the Start-Gap remapper of Qureshi et al.
// (MICRO'09), whose line migrations become extra device writes.
#pragma once

#include <cstdint>
#include <vector>

#include "hms/common/stats.hpp"
#include "hms/common/types.hpp"

namespace hms::mem {

/// Tracks per-line write counts over a device of `lines` lines.
/// Exposes the wear-imbalance metrics the ablation bench reports.
class EnduranceTracker {
 public:
  EnduranceTracker(std::uint64_t lines, std::uint64_t endurance_writes);

  void record_write(std::uint64_t line);

  [[nodiscard]] std::uint64_t lines() const noexcept {
    return static_cast<std::uint64_t>(writes_.size());
  }
  [[nodiscard]] std::uint64_t total_writes() const noexcept { return total_; }
  [[nodiscard]] std::uint64_t max_line_writes() const noexcept { return max_; }
  [[nodiscard]] double mean_line_writes() const noexcept;
  /// max/mean write ratio; 1.0 = perfectly even wear.
  [[nodiscard]] double imbalance() const noexcept;
  /// Fraction of rated endurance consumed by the most-written line
  /// (0 when endurance is unlimited).
  [[nodiscard]] double lifetime_consumed() const noexcept;
  [[nodiscard]] std::uint64_t writes_to(std::uint64_t line) const;

 private:
  std::vector<std::uint32_t> writes_;
  std::uint64_t total_ = 0;
  std::uint64_t max_ = 0;
  std::uint64_t endurance_ = 0;
};

/// Start-Gap wear leveller: maintains one spare line and two registers
/// (start, gap). Every `gap_write_interval` writes, the line just above the
/// gap moves into the gap, shifting the gap down; when the gap wraps, start
/// advances. The logical->physical mapping is
///   physical = (logical + start) mod (n + 1), skipping the gap line,
/// and remains a bijection at every step.
class StartGapWearLeveler {
 public:
  /// `lines`: logical lines exposed; device must have lines + 1 physical
  /// lines. `gap_write_interval`: writes between gap movements (psi in the
  /// paper; 100 is the published sweet spot).
  StartGapWearLeveler(std::uint64_t lines, std::uint64_t gap_write_interval);

  /// Maps a logical line to its current physical line.
  [[nodiscard]] std::uint64_t physical(std::uint64_t logical) const;

  /// Notifies the leveller of one logical write; may trigger a gap move.
  /// Returns the number of extra device writes caused by migration (0 or 1).
  std::uint64_t on_write();

  [[nodiscard]] std::uint64_t logical_lines() const noexcept { return lines_; }
  [[nodiscard]] std::uint64_t physical_lines() const noexcept {
    return lines_ + 1;
  }
  [[nodiscard]] std::uint64_t gap() const noexcept { return gap_; }
  [[nodiscard]] std::uint64_t start() const noexcept { return start_; }
  [[nodiscard]] std::uint64_t migrations() const noexcept {
    return migrations_;
  }

 private:
  std::uint64_t lines_;
  std::uint64_t interval_;
  std::uint64_t start_ = 0;
  std::uint64_t gap_;  ///< physical index of the unused line
  std::uint64_t writes_since_move_ = 0;
  std::uint64_t migrations_ = 0;
};

}  // namespace hms::mem
