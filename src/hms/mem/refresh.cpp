#include "hms/mem/refresh.hpp"

#include "hms/common/error.hpp"

namespace hms::mem {

Power refresh_power(const RefreshParams& params,
                    std::uint64_t capacity_bytes) {
  check(params.row_bytes > 0, "refresh_power: row_bytes must be positive");
  check(params.retention.nanoseconds() > 0.0,
        "refresh_power: retention must be positive");
  const double rows = static_cast<double>(capacity_bytes) /
                      static_cast<double>(params.row_bytes);
  const Energy per_period = params.row_refresh_energy * rows;
  return per_period / params.retention;
}

Power static_power(const TechnologyParams& tech, std::uint64_t capacity_bytes,
                   const RefreshParams& refresh) {
  if (tech.non_volatile) return Power::from_mw(0.0);
  Power total = tech.static_power(capacity_bytes);
  const bool dram_class = tech.technology == Technology::DRAM ||
                          tech.technology == Technology::eDRAM ||
                          tech.technology == Technology::HMC;
  if (dram_class) total += refresh_power(refresh, capacity_bytes);
  return total;
}

}  // namespace hms::mem
