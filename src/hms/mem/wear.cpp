#include "hms/mem/wear.hpp"

#include <algorithm>

#include "hms/common/error.hpp"

namespace hms::mem {

EnduranceTracker::EnduranceTracker(std::uint64_t lines,
                                   std::uint64_t endurance_writes)
    : writes_(lines, 0), endurance_(endurance_writes) {
  check(lines > 0, "EnduranceTracker: need at least one line");
}

void EnduranceTracker::record_write(std::uint64_t line) {
  check(line < writes_.size(), "EnduranceTracker: line out of range");
  const std::uint64_t w = ++writes_[line];
  ++total_;
  max_ = std::max(max_, w);
}

double EnduranceTracker::mean_line_writes() const noexcept {
  return static_cast<double>(total_) / static_cast<double>(writes_.size());
}

double EnduranceTracker::imbalance() const noexcept {
  const double mean = mean_line_writes();
  return mean > 0.0 ? static_cast<double>(max_) / mean : 1.0;
}

double EnduranceTracker::lifetime_consumed() const noexcept {
  if (endurance_ == 0) return 0.0;
  return static_cast<double>(max_) / static_cast<double>(endurance_);
}

std::uint64_t EnduranceTracker::writes_to(std::uint64_t line) const {
  check(line < writes_.size(), "EnduranceTracker: line out of range");
  return writes_[line];
}

StartGapWearLeveler::StartGapWearLeveler(std::uint64_t lines,
                                         std::uint64_t gap_write_interval)
    : lines_(lines), interval_(gap_write_interval), gap_(lines) {
  check(lines > 0, "StartGapWearLeveler: need at least one line");
  check(gap_write_interval > 0,
        "StartGapWearLeveler: interval must be positive");
}

std::uint64_t StartGapWearLeveler::physical(std::uint64_t logical) const {
  check(logical < lines_, "StartGapWearLeveler: logical line out of range");
  const std::uint64_t m = lines_ + 1;
  const std::uint64_t hole_offset = (gap_ + m - start_ % m) % m;
  std::uint64_t p = (start_ + logical) % m;
  if (hole_offset <= logical) p = (p + 1) % m;
  return p;
}

std::uint64_t StartGapWearLeveler::on_write() {
  if (++writes_since_move_ < interval_) return 0;
  writes_since_move_ = 0;
  const std::uint64_t m = lines_ + 1;
  if (gap_ == start_ % m) {
    // Hole sits at the rotation origin: re-normalizing start shifts the
    // logical window without moving any data (the "wrap" step of Start-Gap).
    start_ = (start_ + 1) % m;
    return 0;
  }
  // Copy the line just below the gap into the gap; the gap moves down.
  gap_ = (gap_ + m - 1) % m;
  ++migrations_;
  return 1;  // the migration itself is one extra device write
}

}  // namespace hms::mem
