#include "hms/mem/memory_device.hpp"

#include "hms/common/bitops.hpp"
#include "hms/common/error.hpp"
#include "hms/common/fault.hpp"

namespace hms::mem {

MemoryDevice::MemoryDevice(MemoryDeviceConfig config)
    : config_(std::move(config)) {
  check_config(config_.capacity_bytes > 0,
               "MemoryDevice: capacity must be positive");
  check_config(is_pow2(config_.line_bytes),
               "MemoryDevice: line size must be a power of two");
  check_config(config_.capacity_bytes % config_.line_bytes == 0,
               "MemoryDevice: capacity must be a multiple of the line size");
  if (config_.wear_leveling) config_.track_endurance = true;
  if (config_.track_endurance) {
    const std::uint64_t lines = config_.capacity_bytes / config_.line_bytes;
    // Physical lines = logical + 1 when Start-Gap is active.
    endurance_.emplace(lines + (config_.wear_leveling ? 1 : 0),
                       config_.technology.endurance_writes);
    if (config_.wear_leveling) {
      leveler_.emplace(lines, config_.gap_write_interval);
    }
  }
}

std::uint64_t MemoryDevice::line_of(Address address) const {
  const std::uint64_t logical =
      (address / config_.line_bytes) %
      (config_.capacity_bytes / config_.line_bytes);
  return leveler_ ? leveler_->physical(logical) : logical;
}

void MemoryDevice::read(Address address, std::uint64_t bytes) {
  HMS_FAULT_POINT("mem/device_read");
  (void)address;
  ++stats_.reads;
  stats_.read_bytes += bytes;
}

void MemoryDevice::write(Address address, std::uint64_t bytes) {
  HMS_FAULT_POINT("mem/device_write");
  ++stats_.writes;
  stats_.write_bytes += bytes;
  if (!endurance_) return;
  endurance_->record_write(line_of(address));
  if (leveler_) {
    const std::uint64_t extra = leveler_->on_write();
    if (extra > 0) {
      stats_.migration_writes += extra;
      stats_.write_bytes += extra * config_.line_bytes;
      // The migrated line lands in the pre-move gap slot, which is one
      // above the gap's new position; charge its wear.
      endurance_->record_write((leveler_->gap() + 1) %
                               leveler_->physical_lines());
    }
  }
}

}  // namespace hms::mem
