// DRAM/eDRAM refresh power model.
//
// Volatile technologies spend background power on periodic refresh; the
// paper folds this into per-capacity static power (Eq. 4). This model makes
// the refresh component explicit so the ablation benches can vary refresh
// interval and retention time independently of array leakage.
#pragma once

#include <cstdint>

#include "hms/common/units.hpp"
#include "hms/mem/technology.hpp"

namespace hms::mem {

struct RefreshParams {
  /// Cell retention time; every row must be refreshed at least this often.
  Time retention = Time::from_seconds(64e-3);  ///< 64 ms JEDEC default
  /// Energy to refresh one row (DDR3-class: a few nJ per 8 KiB row, sized
  /// so a 4 GiB device draws ~40 mW of refresh power).
  Energy row_refresh_energy = Energy::from_pj(5000.0);
  /// Bytes per refresh row.
  std::uint64_t row_bytes = 8192;
};

/// Average refresh power of a device of `capacity_bytes`:
///   rows * row_energy / retention.
[[nodiscard]] Power refresh_power(const RefreshParams& params,
                                  std::uint64_t capacity_bytes);

/// Total static power of a device: technology leakage density x capacity,
/// plus refresh when the technology is volatile DRAM-class (DRAM, eDRAM,
/// HMC). Non-volatile technologies contribute nothing (paper assumption).
[[nodiscard]] Power static_power(const TechnologyParams& tech,
                                 std::uint64_t capacity_bytes,
                                 const RefreshParams& refresh = {});

}  // namespace hms::mem
