// Memory technology characterization (paper Table 1 + CACTI-style cache
// parameters and static/refresh power constants).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "hms/common/units.hpp"

namespace hms::mem {

/// The technologies evaluated by the paper, plus SRAM for on-chip caches.
enum class Technology : std::uint8_t {
  SRAM,    ///< on-chip cache arrays (L1/L2/L3)
  DRAM,    ///< commodity DDR DRAM ("RAM" row of Table 1)
  PCM,     ///< phase-change memory
  STTRAM,  ///< spin-torque-transfer magnetic RAM
  FeRAM,   ///< ferro-electric RAM
  eDRAM,   ///< embedded DRAM (on-chip L4 option)
  HMC,     ///< Hybrid Memory Cube (off-chip stacked L4 option)
};

[[nodiscard]] std::string_view to_string(Technology t);

/// Parses "dram", "PCM", "sttram", ... (case-insensitive).
/// Throws hms::Error on unknown names.
[[nodiscard]] Technology technology_from_string(std::string_view name);

/// Device characterization used by the performance and energy models.
///
/// Latencies and dynamic energies for the non-SRAM rows are Table 1 of the
/// paper verbatim (sources: CACTI for DRAM/eDRAM, an HMC prototype, the 2013
/// ITRS report for PCM/STT-RAM, ISSCC'06 literature for FeRAM).
///
/// The paper states static/refresh power was taken from CACTI and the Micron
/// power calculator but its printed table is corrupted; `static_power_per_mib`
/// below carries documented values of the right relative magnitude
/// (DESIGN.md, substitutions table).
struct TechnologyParams {
  Technology technology = Technology::DRAM;
  Time read_latency;          ///< per-access read delay
  Time write_latency;         ///< per-access write delay
  double read_pj_per_bit = 0.0;
  double write_pj_per_bit = 0.0;
  Power static_power_per_mib;  ///< leakage + refresh, per MiB of capacity
  bool non_volatile = false;
  /// Writes a cell endures before wear-out; 0 means effectively unlimited.
  std::uint64_t endurance_writes = 0;

  [[nodiscard]] Time latency(bool is_store) const {
    return is_store ? write_latency : read_latency;
  }
  [[nodiscard]] double pj_per_bit(bool is_store) const {
    return is_store ? write_pj_per_bit : read_pj_per_bit;
  }
  /// Dynamic energy of moving `bytes` in one access of the given kind
  /// (Eq. 3 building block: energy/bit x bits moved).
  [[nodiscard]] Energy access_energy(bool is_store, std::uint64_t bytes) const {
    return Energy::from_pj(pj_per_bit(is_store) *
                           static_cast<double>(bytes) * 8.0);
  }
  /// Static power of a device of `capacity_bytes` (Eq. 4 building block).
  [[nodiscard]] Power static_power(std::uint64_t capacity_bytes) const {
    return static_power_per_mib *
           (static_cast<double>(capacity_bytes) / (1024.0 * 1024.0));
  }
};

/// Immutable registry of the paper's Table 1 plus SRAM cache parameters.
class TechnologyRegistry {
 public:
  /// The default registry with the paper's published values.
  [[nodiscard]] static const TechnologyRegistry& table1();

  [[nodiscard]] const TechnologyParams& get(Technology t) const;
  [[nodiscard]] const TechnologyParams& get(std::string_view name) const;

  /// All registered technologies, in Table 1 order.
  [[nodiscard]] const std::vector<TechnologyParams>& all() const {
    return params_;
  }

  /// A copy with one technology's parameters replaced — used by the heat-map
  /// sweeps (Figs. 9-10) that scale NVM latency/energy relative to DRAM.
  [[nodiscard]] TechnologyRegistry with(const TechnologyParams& override_params)
      const;

 private:
  std::vector<TechnologyParams> params_;
};

/// SRAM cache parameters by level. The paper took these from CACTI 6.0 for
/// the Sandy Bridge reference (32 KB L1 / 256 KB L2 / 20 MB L3); these are
/// CACTI-style values at 32 nm documented in technology.cpp.
struct CacheTechnology {
  Time access_latency;
  double pj_per_bit = 0.0;
  Power static_power_per_mib;

  [[nodiscard]] TechnologyParams as_params() const;
};

/// L1/L2/L3 SRAM characterizations for the reference system.
[[nodiscard]] const CacheTechnology& sram_level(int level);

}  // namespace hms::mem
